//! The differential oracle over (program, schedule, seed) triples.
//!
//! One triple fixes an entire asynchronous execution: the program, the
//! oblivious adversary, and the master seed that derives every private
//! random source. A triple plus a scheme is a full [`Scenario`]
//! ([`Triple::scenario`]), and every oracle leg goes through
//! [`Scenario::run`] — so the legs of a differential comparison are
//! scenarios differing in exactly one field, `mode.scheme`. The oracle
//! runs the scenario through its execution scheme
//! on the batched engine; the scheme harness then replays the agreed
//! choices through the ideal executor with `Choices::Injected` and
//! compares memory, per-instruction outputs, and admissibility
//! ([`apex_scheme::verify`]). On top of the verifier the oracle checks the
//! run's *work accounting* invariants (tick/work identity, subphase
//! monotonicity), so a divergence in any of memory, outputs, or
//! bookkeeping fails the triple.
//!
//! Expected differential shape (the paper's Theorem 1 vs its §1
//! motivation): [`SchemeKind::Nondet`] must never diverge; running the
//! same nondeterministic triples through [`SchemeKind::DetBaseline`]
//! *does* diverge on a measurable fraction — each such triple is a
//! concrete witness that the prior-work scheme is unsound for
//! nondeterministic programs (the E10 claim, generalized from one
//! hand-written workload to the synthesized program space).

use apex_pram::Program;
use apex_scenario::{ProgramSource, Scenario};
use apex_scheme::{SchemeKind, SchemeReport};
use apex_sim::AdversarySpec;

/// One generated scenario point: the workload and adversary, with the
/// scheme left open (the differential axis).
#[derive(Clone, Debug, PartialEq)]
pub struct Triple {
    /// The synthesized strict-EREW program.
    pub program: Program,
    /// The synthesized oblivious adversary (any algebra composition).
    pub schedule: AdversarySpec,
    /// Master seed (private random sources + schedule fallback stream).
    pub seed: u64,
}

impl Triple {
    /// The full [`Scenario`] this triple describes under `kind` — the
    /// oracle's legs differ **only** in this one field, which is the whole
    /// differential argument.
    pub fn scenario(&self, kind: SchemeKind) -> Scenario {
        Scenario::scheme(
            kind,
            ProgramSource::Explicit(self.program.clone()),
            self.seed,
        )
        .schedule(self.schedule.clone())
    }
}

/// Why a scheme run aborted instead of completing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunAbort {
    /// The harness's clock-stall assertion tripped: a liveness budget
    /// exhausted under an extreme adversary — survivable data, not an
    /// inconsistent execution.
    ClockStall(String),
    /// Any other panic — a genuine engine/scheme crash the fuzzer must
    /// surface as a failure, never swallow.
    Panic(String),
}

/// What the oracle concluded about one (triple, scheme) execution.
#[derive(Clone, Debug, Default)]
pub struct Verdict {
    /// Verifier violations (replica divergence, missing values,
    /// deterministic mismatches, inadmissible choices, final-memory
    /// mismatches, replay shape errors).
    pub violations: usize,
    /// Work-accounting invariants that failed (human-readable), plus any
    /// non-stall harness panic.
    pub work_anomalies: Vec<String>,
    /// The run tripped the clock-stall liveness budget — counted
    /// separately from divergence.
    pub stalled: bool,
}

impl Verdict {
    /// Whether the execution was inconsistent with every synchronous run
    /// (the fuzzer's failure condition).
    pub fn diverged(&self) -> bool {
        self.violations > 0 || !self.work_anomalies.is_empty()
    }
}

/// Execute a scheme-mode scenario, classifying panics: the harness's
/// clock-stall assertion becomes [`RunAbort::ClockStall`]; any other panic
/// (including a failed [`Scenario::validate`]) is [`RunAbort::Panic`] and
/// must be treated as a failure by callers.
pub fn run_scenario(scenario: &Scenario) -> Result<SchemeReport, RunAbort> {
    run_scenario_with_engine(scenario, None)
}

/// [`run_scenario`] with a runtime interpreter-engine override (`None`
/// runs the scenario's own knob). Reports are engine-independent, so a
/// divergence found on one engine and replayed on the other is a bug in
/// an interpreter, not in the finding.
pub fn run_scenario_with_engine(
    scenario: &Scenario,
    engine: Option<apex_scenario::ProgramEngine>,
) -> Result<SchemeReport, RunAbort> {
    let scenario = scenario.clone();
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        scenario.run_with_engines(None, engine).into_scheme()
    }))
    .map_err(|payload| {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        if msg.contains("clock stalled") {
            RunAbort::ClockStall(msg)
        } else {
            RunAbort::Panic(msg)
        }
    })
}

/// [`run_scenario`] for a (triple, scheme) pair.
pub fn run_triple(triple: &Triple, kind: SchemeKind) -> Result<SchemeReport, RunAbort> {
    run_scenario(&triple.scenario(kind))
}

/// Apply the oracle's checks to a completed run.
pub fn judge(report: &SchemeReport) -> Verdict {
    let mut work_anomalies = Vec::new();
    if report.ticks != report.total_work {
        work_anomalies.push(format!(
            "ticks {} != total work {} under the count-as-work policy",
            report.ticks, report.total_work
        ));
    }
    if report.subphase_work.len() != 2 * report.t_steps {
        work_anomalies.push(format!(
            "{} subphase boundaries for {} steps (want {})",
            report.subphase_work.len(),
            report.t_steps,
            2 * report.t_steps
        ));
    }
    if report.subphase_work.windows(2).any(|w| w[0] > w[1]) {
        work_anomalies.push("subphase work not monotone".into());
    }
    if let Some(&last) = report.subphase_work.last() {
        if last > report.total_work {
            work_anomalies.push(format!(
                "final subphase boundary {last} exceeds total work {}",
                report.total_work
            ));
        }
    }
    Verdict {
        violations: report.verify.violations(),
        work_anomalies,
        stalled: false,
    }
}

/// [`run_scenario`] + [`judge`] in one call. A clock stall yields a
/// verdict with `stalled = true` and no divergence; any other panic *is* a
/// divergence (recorded as a work anomaly so campaigns and reproducers
/// fail loudly on engine crashes).
pub fn check_scenario(scenario: &Scenario) -> Verdict {
    check_scenario_with_engine(scenario, None)
}

/// [`check_scenario`] with a runtime interpreter-engine override.
pub fn check_scenario_with_engine(
    scenario: &Scenario,
    engine: Option<apex_scenario::ProgramEngine>,
) -> Verdict {
    match run_scenario_with_engine(scenario, engine) {
        Ok(report) => judge(&report),
        Err(RunAbort::ClockStall(_)) => Verdict {
            stalled: true,
            ..Verdict::default()
        },
        Err(RunAbort::Panic(msg)) => Verdict {
            work_anomalies: vec![format!("harness panic: {msg}")],
            ..Verdict::default()
        },
    }
}

/// [`check_scenario`] for a (triple, scheme) pair.
pub fn check_triple(triple: &Triple, kind: SchemeKind) -> Verdict {
    check_scenario(&triple.scenario(kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_nondet_program, GenConfig};
    use crate::sched_gen::{generate_adversary, SchedGenConfig};

    fn triple(seed: u64) -> Triple {
        let program = generate_nondet_program(&GenConfig::default(), seed);
        let schedule = generate_adversary(&SchedGenConfig::default(), program.n_threads, seed);
        Triple {
            program,
            schedule,
            seed,
        }
    }

    #[test]
    fn nondet_scheme_is_clean_on_synthesized_triples() {
        for seed in 0..5 {
            let t = triple(seed);
            let v = check_triple(&t, SchemeKind::Nondet);
            assert!(!v.stalled, "seed {seed} stalled");
            assert!(!v.diverged(), "seed {seed}: {v:?}");
        }
    }

    #[test]
    fn non_stall_panics_are_divergences_not_stalls() {
        // An invalid program trips the harness's "valid program" assert —
        // a non-stall panic, which must fail the triple loudly.
        let mut t = triple(0);
        t.program.init.pop();
        let v = check_triple(&t, SchemeKind::Nondet);
        assert!(!v.stalled, "{v:?}");
        assert!(v.diverged(), "{v:?}");
        assert!(v.work_anomalies[0].contains("harness panic"), "{v:?}");
        assert!(matches!(
            run_triple(&t, SchemeKind::Nondet),
            Err(RunAbort::Panic(_))
        ));
    }

    #[test]
    fn judge_flags_cooked_work_accounting() {
        let t = triple(1);
        let mut report = run_triple(&t, SchemeKind::Nondet).unwrap();
        assert!(!judge(&report).diverged());
        report.ticks += 1;
        report.subphase_work.push(report.total_work + 999);
        let v = judge(&report);
        assert!(v.work_anomalies.len() >= 2, "{v:?}");
        assert!(v.diverged());
    }

    #[test]
    fn oracle_legs_differ_only_in_the_scheme_field() {
        let t = triple(2);
        let a = t.scenario(SchemeKind::Nondet);
        let b = t.scenario(SchemeKind::DetBaseline);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.agreement, b.agreement);
        assert_eq!(a.engine, b.engine);
        let (
            apex_scenario::Mode::Scheme {
                program: pa,
                replicas: ka,
                ..
            },
            apex_scenario::Mode::Scheme {
                program: pb,
                replicas: kb,
                ..
            },
        ) = (&a.mode, &b.mode)
        else {
            panic!("triple scenarios are scheme-mode");
        };
        assert_eq!(pa, pb);
        assert_eq!(ka, kb);
        assert_ne!(a, b, "the one differing field");
    }

    #[test]
    fn comparator_schemes_are_clean_on_a_synthesized_triple() {
        let t = triple(4);
        for kind in [SchemeKind::ScanConsensus, SchemeKind::IdealCas] {
            let v = check_triple(&t, kind);
            assert!(!v.stalled, "{kind:?} stalled");
            assert!(!v.diverged(), "{kind:?}: {v:?}");
        }
    }

    #[test]
    fn verdicts_are_reproducible() {
        let t = triple(3);
        let a = run_triple(&t, SchemeKind::Nondet).unwrap();
        let b = run_triple(&t, SchemeKind::Nondet).unwrap();
        assert_eq!(a.total_work, b.total_work);
        assert_eq!(a.final_memory, b.final_memory);
    }
}
