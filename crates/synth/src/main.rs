//! `apex-synth` — the scenario-synthesis / differential-fuzzing CLI.
//!
//! A thin shell over [`apex_synth::cli`]; the top-level `apex` binary
//! fronts the same command set as `apex synth …`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    apex_synth::cli::dispatch(&argv)
}
