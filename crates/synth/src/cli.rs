//! The synthesis command set, as a library.
//!
//! Every subcommand of the `apex-synth` binary lives here so the
//! top-level `apex` binary can front the same implementations (`apex
//! synth …`, `apex run …`) without duplicating them — one front door,
//! one implementation.
//!
//! ```text
//! gen          --seed S --count K [--show-schedule]
//! fuzz         --seed S --trials K [--out DIR] [--keep N] [--max-secs T]
//!              [--shrink-budget R] [--no-det] [--comparators] [--no-write]
//! shrink       --file REPRO.json [--out DIR] [--shrink-budget R]
//! replay       --file REPRO.json | --dir DIR
//! run          SCENARIO.json [--emit OUT.json] [--json] [--cached [--store DIR]]
//!              [--trace [FILE]] [--metrics [FILE]] [--profile]
//! migrate      [--dir DIR]
//! corpus-dedup [--dir DIR] [--dry-run]
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use apex_scenario::{RunOutcome, Scenario};
use apex_scheme::SchemeKind;

use crate::campaign::{campaign_triple, run_campaign, CampaignConfig, Finding};
use crate::repro::{dedup_corpus, Expectation, Reproducer, VERSION};
use crate::{check_triple, shrink};

/// Print the synthesis usage text and exit with status 2.
pub fn usage() -> ! {
    eprintln!(
        "usage: apex-synth <gen|fuzz|shrink|replay|run|migrate|corpus-dedup> [options]\n\
         \n\
         gen          --seed S --count K [--show-schedule]   print generated programs\n\
         fuzz         --seed S --trials K [--out DIR] [--keep N] [--max-secs T]\n\
         \x20             [--shrink-budget R] [--no-det] [--comparators] [--no-write]\n\
         shrink       --file F [--out DIR] [--shrink-budget R]\n\
         replay       --file F | --dir DIR\n\
         run          SCENARIO.json [--emit OUT.json] [--json] [--cached [--store DIR]]\n\
         \x20             [--exec serial|ticketed [--workers N]] [--engine tree|bytecode]\n\
         \x20             [--trace [FILE]] [--metrics [FILE]] [--profile]\n\
         \x20             execute a scenario file (--cached answers from the lab store;\n\
         \x20             --exec overrides the kernel engine, --engine the scheme-mode\n\
         \x20             interpreter, --trace/--metrics observe the run — none of them\n\
         \x20             changes a result byte)\n\
         migrate      [--dir DIR]                     rewrite artifacts at v{VERSION}\n\
         corpus-dedup [--dir DIR] [--dry-run]         drop scenario-digest duplicates"
    );
    std::process::exit(2)
}

/// Minimal `--flag [value]` argument list shared by the workspace CLIs.
pub struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parse `--name [value]` pairs; anything not starting with `--`
    /// where a flag is expected aborts with the usage text.
    pub fn parse(raw: &[String]) -> Args {
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                eprintln!("unexpected argument {arg:?}");
                usage();
            };
            let value = it
                .peek()
                .filter(|v| !v.starts_with("--"))
                .map(|v| v.to_string());
            if value.is_some() {
                it.next();
            }
            flags.push((name.to_string(), value));
        }
        Args { flags }
    }

    /// The value of `--name`, if present with a value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Whether `--name` was passed at all.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// Every value of a repeatable `--name VALUE` flag, in order
    /// (occurrences without a value are skipped).
    pub fn all(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }

    /// The value of `--name` parsed as `T`, or `default` when absent.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid --{name} value {v:?}");
                usage();
            }),
        }
    }
}

/// Parse the shared `--exec serial|ticketed [--workers N]` engine
/// override used by `run`, `suite run` and `farm worker`. `--workers N`
/// alone implies the ticketed engine; the flags never change a result
/// byte, only which engine computes it. Invalid values abort with the
/// usage text.
pub fn exec_override(args: &Args) -> Option<apex_scenario::ExecMode> {
    use apex_scenario::ExecMode;
    let workers: usize = args.num("workers", 4);
    let mode = match args.get("exec") {
        None if args.has("workers") => ExecMode::Ticketed { workers },
        None => return None,
        Some("serial") => ExecMode::Serial,
        Some("ticketed") => ExecMode::Ticketed { workers },
        Some(other) => {
            eprintln!("invalid --exec value {other:?} (expected serial or ticketed)");
            usage();
        }
    };
    if let Err(e) = mode.validate() {
        eprintln!("{e}");
        usage();
    }
    Some(mode)
}

/// Parse the shared `--engine tree|bytecode` scheme-interpreter override
/// used by `run`, `suite run` and `farm worker`. Like `--exec`, the flag
/// never changes a result byte — both engines produce byte-identical
/// reports — only which interpreter computes them. Invalid values abort
/// with the usage text.
pub fn engine_override(args: &Args) -> Option<apex_scenario::ProgramEngine> {
    let value = args.get("engine")?;
    match apex_scenario::ProgramEngine::parse(value) {
        Some(engine) => Some(engine),
        None => {
            eprintln!("invalid --engine value {value:?} (expected tree or bytecode)");
            usage();
        }
    }
}

/// Parse the shared `--trace [FILE] --metrics --profile` telemetry
/// flags used by `run`, `suite run` and `farm worker`. A bare
/// `--trace` resolves to `default_trace` (a conventional location next
/// to the run's other artifacts); `--trace FILE` goes wherever the
/// caller pointed. Telemetry observes the run and never changes a
/// result byte, so these flags compose freely with `--exec`/`--cached`.
pub fn obs_override(args: &Args, default_trace: impl FnOnce() -> PathBuf) -> apex_obs::ObsOpts {
    apex_obs::ObsOpts {
        trace: args.has("trace").then(|| {
            args.get("trace")
                .map(PathBuf::from)
                .unwrap_or_else(default_trace)
        }),
        metrics: args.has("metrics"),
        profile: args.has("profile"),
    }
}

/// Dispatch one synthesis subcommand (`argv` excludes the binary name
/// and the subcommand itself is `argv[0]`). Unknown commands print the
/// usage text and exit 2.
pub fn dispatch(argv: &[String]) -> ExitCode {
    let Some(cmd) = argv.first() else { usage() };
    if cmd == "run" {
        // `run` takes a positional scenario file.
        return cmd_run(&argv[1..]);
    }
    let args = Args::parse(&argv[1..]);
    match cmd.as_str() {
        "gen" => cmd_gen(&args),
        "fuzz" => cmd_fuzz(&args),
        "shrink" => cmd_shrink(&args),
        "replay" => cmd_replay(&args),
        "migrate" => cmd_migrate(&args),
        "corpus-dedup" => cmd_corpus_dedup(&args),
        _ => usage(),
    }
}

/// Execute one scenario file: validate, (optionally) re-emit the
/// canonical serialized form, run, and report — human-readable by
/// default, the full [`ReportRecord`](apex_scenario::ReportRecord) document on stdout with `--json`
/// (for scripts and CI). Exit code 0 iff the run met its mode's
/// correctness bar.
pub fn cmd_run(raw: &[String]) -> ExitCode {
    let (file, rest) = match raw.first() {
        Some(f) if !f.starts_with("--") => (Some(f.clone()), &raw[1..]),
        _ => (None, raw),
    };
    let args = Args::parse(rest);
    let Some(file) = file.or_else(|| args.get("file").map(str::to_string)) else {
        usage()
    };
    let scenario = match Scenario::load(Path::new(&file)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = scenario.validate() {
        eprintln!("{file}: invalid scenario: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(out) = args.get("emit") {
        if let Err(e) = scenario.save(Path::new(out)) {
            eprintln!("failed to write {out}: {e}");
            return ExitCode::FAILURE;
        }
        if args.has("json") {
            eprintln!("wrote canonical form to {out}");
        } else {
            println!("wrote canonical form to {out}");
        }
    }
    if args.has("cached") {
        // Memoize through the lab store: a verified record anywhere in
        // the store for this scenario digest answers without executing.
        let store = match args.get("store") {
            Some(dir) => apex_lab::LabStore::new(dir),
            None => apex_lab::LabStore::default_location(),
        };
        if let Some((suite, text, record)) = store.find_record(&scenario.digest()) {
            if args.has("json") {
                print!("{text}");
                eprintln!("cache hit (suite {suite})");
            } else {
                println!(
                    "cache hit (suite {suite}): {}",
                    if record.ok() { "ok" } else { "FAIL" }
                );
            }
            return if record.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
        if !args.has("json") {
            println!("cache miss: executing");
        }
    }
    // Captured, not raw: a panicking or budget-exhausted scenario becomes
    // a typed outcome document and a failing exit code instead of an
    // abort, so campaign scripts can tell the failure classes apart.
    let obs_opts = obs_override(&args, || PathBuf::from(apex_obs::TRACE_FILE));
    let obs = match obs_opts.open_trace() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("--trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stopwatch = apex_obs::Stopwatch::start();
    let (outcome, exec_stats) = RunOutcome::capture_engines_obs(
        &scenario,
        exec_override(&args),
        engine_override(&args),
        &obs,
    );
    obs.flush();
    if obs_opts.metrics || obs_opts.profile {
        let metrics = single_run_metrics(&outcome, exec_stats, &obs_opts, &stopwatch);
        let path = args.get("metrics").unwrap_or(apex_obs::METRICS_FILE);
        if let Err(e) = std::fs::write(path, metrics.render_pretty()) {
            eprintln!("--metrics: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !args.has("json") {
            println!("metrics: wrote {path}");
        }
    }
    if args.has("json") {
        // Stdout carries exactly one document (the record when the run
        // completed, the typed outcome otherwise); the summary goes to
        // stderr so pipelines stay parseable.
        match outcome.record() {
            Some(record) => print!("{}", record.render_pretty()),
            None => print!("{}", outcome.to_json().render_pretty()),
        }
        eprintln!("{}", outcome.summary());
    } else {
        println!("{}", outcome.summary());
        if let Some(outputs) = outcome.record().and_then(|r| r.outputs.as_ref()) {
            println!("named outputs: {outputs:?}");
        }
    }
    if outcome.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The unified metrics document for one `apex run` invocation — the
/// same instrument names `apex suite run` records, over a suite of one
/// cell, so `apex obs metrics --merge` folds single runs and suite runs
/// alike.
fn single_run_metrics(
    outcome: &RunOutcome,
    exec_stats: apex_scenario::ExecStats,
    opts: &apex_obs::ObsOpts,
    stopwatch: &apex_obs::Stopwatch,
) -> apex_obs::Metrics {
    let mut m = apex_obs::Metrics::new();
    m.gauge_max("cells.total", 1);
    m.add("cells.executed", 1);
    m.add("cells.ok", u64::from(outcome.ok()));
    m.add(
        "cells.exhausted",
        u64::from(outcome.status() == "exhausted"),
    );
    m.add("cells.poisoned", u64::from(outcome.status() == "poisoned"));
    let ticks = outcome.record().map(|r| r.report.ticks()).unwrap_or(0);
    m.add("ticks.executed", ticks);
    m.add("exec.windows", exec_stats.windows);
    m.add("exec.conflicts", exec_stats.conflicts);
    m.add("exec.serial_reruns", exec_stats.serial_reruns);
    m.gauge_max("exec.workers", exec_stats.workers as u64);
    if outcome.record().is_some() {
        m.observe("cells.ticks", ticks);
    }
    if opts.profile {
        m.add("time.elapsed_ms", stopwatch.elapsed_ms());
    }
    m
}

/// Rewrite every artifact in a corpus directory in the current format
/// (legacy v1 files come back v2 under their new content-derived names).
pub fn cmd_migrate(args: &Args) -> ExitCode {
    let dir = PathBuf::from(args.get("dir").unwrap_or("corpus"));
    let entries = match Reproducer::load_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    for (path, repro) in &entries {
        let new_path = match repro.save(&dir) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("failed to rewrite {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        if *path != new_path {
            if let Err(e) = std::fs::remove_file(path) {
                eprintln!("failed to remove superseded {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("migrated {} -> {}", path.display(), new_path.display());
        } else {
            println!("rewrote {} in place", path.display());
        }
    }
    println!("{} artifacts now at format v{VERSION}", entries.len());
    ExitCode::SUCCESS
}

/// Remove reproducers whose canonical scenario digests collide (first
/// step of the corpus lifecycle; `--dry-run` only reports).
pub fn cmd_corpus_dedup(args: &Args) -> ExitCode {
    let dir = PathBuf::from(args.get("dir").unwrap_or("corpus"));
    let dry_run = args.has("dry-run");
    let outcome = match dedup_corpus(&dir, dry_run) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    for (dup, kept) in &outcome.removed {
        println!(
            "{} {} (duplicate of {})",
            if dry_run { "would remove" } else { "removed" },
            dup.display(),
            kept.display()
        );
    }
    println!(
        "{} distinct scenarios kept, {} duplicates {}",
        outcome.kept.len(),
        outcome.removed.len(),
        if dry_run { "found" } else { "removed" }
    );
    ExitCode::SUCCESS
}

fn cmd_gen(args: &Args) -> ExitCode {
    let seed: u64 = args.num("seed", 0);
    let count: usize = args.num("count", 3);
    let cfg = CampaignConfig::new(count, seed);
    for i in 0..count {
        let t = campaign_triple(&cfg, i);
        println!(
            "# {} — {} threads, {} steps, {} instructions, nondet={}",
            t.program.name,
            t.program.n_threads,
            t.program.n_steps(),
            t.program.n_instructions(),
            t.program.is_nondeterministic()
        );
        for (step, row) in t.program.steps.iter().enumerate() {
            for (thread, slot) in row.iter().enumerate() {
                if let Some(instr) = slot {
                    println!("  step {step} thread {thread}: {instr}");
                }
            }
        }
        if args.has("show-schedule") {
            println!("  schedule: {}", t.schedule.to_json().render());
        }
        println!();
    }
    ExitCode::SUCCESS
}

fn write_reproducer(finding: &Finding, expected: Expectation, note: String, out: &Path) {
    let repro = Reproducer::new(finding.scheme, expected, note, &finding.triple);
    match repro.save(out) {
        Ok(path) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  failed to write reproducer: {e}"),
    }
}

fn cmd_fuzz(args: &Args) -> ExitCode {
    let seed: u64 = args.num("seed", 1);
    let trials: usize = args.num("trials", 1000);
    let keep: usize = args.num("keep", 3);
    let shrink_budget: usize = args.num("shrink-budget", 400);
    let out = PathBuf::from(args.get("out").unwrap_or("corpus"));
    let write = !args.has("no-write");

    let mut cfg = CampaignConfig::new(trials, seed);
    cfg.det_leg = !args.has("no-det");
    cfg.comparator_legs = args.has("comparators");
    if args.has("max-secs") {
        cfg.max_secs = Some(args.num("max-secs", 30.0));
    }

    println!(
        "fuzz: {} triples from seed {} (det leg: {}, comparator legs: {})",
        trials, seed, cfg.det_leg, cfg.comparator_legs
    );
    let mut last_print = std::time::Instant::now();
    let mut progress = move |done: usize, findings: usize| {
        if last_print.elapsed().as_secs_f64() > 2.0 {
            println!("  … {done}/{trials} triples, {findings} findings");
            last_print = std::time::Instant::now();
        }
    };
    let outcome = run_campaign(&cfg, Some(&mut progress));

    println!(
        "ran {} triples ({} det-baseline legs, {} stalls) in {:.1}s",
        outcome.trials_run, outcome.det_trials_run, outcome.stalls, outcome.wall_secs
    );
    println!(
        "nondet-scheme divergences: {} (must be 0)",
        outcome.nondet_divergences.len()
    );
    println!(
        "det-baseline divergences:  {} (witnesses of prior-work unsoundness)",
        outcome.det_divergences.len()
    );
    if cfg.comparator_legs {
        println!(
            "comparator divergences:    {} over {} legs (must be 0)",
            outcome.comparator_divergences.len(),
            outcome.comparator_trials_run
        );
    }

    // A paper-scheme (or comparator) divergence is a real bug: record it
    // and fail loudly.
    for finding in outcome
        .nondet_divergences
        .iter()
        .chain(&outcome.comparator_divergences)
    {
        println!(
            "BUG: {} diverged on triple {} ({:?})",
            finding.scheme.label(),
            finding.index,
            finding.verdict
        );
        if write {
            write_reproducer(
                finding,
                Expectation::Diverges,
                format!(
                    "UNEXPECTED {} divergence; campaign seed {seed}, triple {}",
                    finding.scheme.label(),
                    finding.index
                ),
                &out,
            );
        }
    }

    if write {
        for finding in outcome.det_divergences.iter().take(keep) {
            println!(
                "shrinking det-baseline divergence at triple {} ({} instrs)…",
                finding.index,
                finding.triple.program.n_instructions()
            );
            let (small, stats) = shrink(&finding.triple, SchemeKind::DetBaseline, shrink_budget);
            println!(
                "  {:?} -> {:?} in {} runs ({} accepted)",
                stats.before, stats.after, stats.runs, stats.accepted
            );
            // The differential pair: DetBaseline diverges, Nondet is clean
            // on the very same shrunk triple.
            let nondet = check_triple(&small, SchemeKind::Nondet);
            let pair_note = if nondet.diverged() || nondet.stalled {
                "; NOTE: nondet leg not clean on shrunk triple".to_string()
            } else {
                "; nondet scheme verified clean on this triple".to_string()
            };
            let shrunk_finding = Finding {
                triple: small,
                ..finding.clone()
            };
            write_reproducer(
                &shrunk_finding,
                Expectation::Diverges,
                format!(
                    "det-baseline divergence found by campaign seed {seed} at triple {}, \
                     shrunk {:?} -> {:?} in {} oracle runs{pair_note}",
                    finding.index, stats.before, stats.after, stats.runs
                ),
                &out,
            );
        }
    }

    if !outcome.nondet_divergences.is_empty() || !outcome.comparator_divergences.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_shrink(args: &Args) -> ExitCode {
    let Some(file) = args.get("file") else {
        usage()
    };
    let shrink_budget: usize = args.num("shrink-budget", 400);
    let out = PathBuf::from(args.get("out").unwrap_or("corpus"));
    let repro = match Reproducer::load(&PathBuf::from(file)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if repro.expected != Expectation::Diverges {
        eprintln!("only divergence reproducers can be shrunk");
        return ExitCode::FAILURE;
    }
    let triple = repro.triple();
    let verdict = check_triple(&triple, repro.scheme());
    if !verdict.diverged() {
        eprintln!("triple no longer diverges; nothing to shrink");
        return ExitCode::FAILURE;
    }
    let (small, stats) = shrink(&triple, repro.scheme(), shrink_budget);
    println!(
        "shrunk {:?} -> {:?} in {} runs",
        stats.before, stats.after, stats.runs
    );
    let new = Reproducer::new(
        repro.scheme(),
        repro.expected,
        format!(
            "{} (re-shrunk: {:?} -> {:?})",
            repro.note, stats.before, stats.after
        ),
        &small,
    );
    match new.save(&out) {
        Ok(path) => {
            println!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_replay(args: &Args) -> ExitCode {
    let entries: Vec<(PathBuf, Reproducer)> = if let Some(file) = args.get("file") {
        let path = PathBuf::from(file);
        match Reproducer::load(&path) {
            Ok(r) => vec![(path, r)],
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(dir) = args.get("dir") {
        match Reproducer::load_dir(&PathBuf::from(dir)) {
            Ok(rs) => rs,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        usage()
    };

    let engine = engine_override(args);
    let mut failures = 0;
    for (path, repro) in &entries {
        match repro.check_with_engine(engine) {
            Ok(verdict) => println!(
                "ok   {} ({}, expect {:?}, violations={})",
                path.display(),
                repro.scheme().label(),
                repro.expected,
                verdict.violations
            ),
            Err(e) => {
                failures += 1;
                println!("FAIL {}: {e}", path.display());
            }
        }
    }
    println!(
        "{}/{} reproducers replayed as recorded",
        entries.len() - failures,
        entries.len()
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
