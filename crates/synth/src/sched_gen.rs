//! Seeded synthesis of adversarial oblivious schedules.
//!
//! Emits [`ScheduleKind::Scripted`] adversaries beyond the hand-written
//! gallery: random compositions of *phase-aligned starvation* windows
//! (a subset of processors is frozen for roughly a subphase of work),
//! *tardy-writer* windows (one processor hogs the machine, so everyone
//! else becomes tardy at once — the loaded-gun shape), and skewed
//! round-robin bursts, followed by a random fallback family (including
//! crash patterns). Window lengths are scaled to the scheme's estimated
//! subphase work for the trial's processor count, so the scripted prefix
//! interacts with the Compute/Copy parity instead of washing out.
//!
//! Everything is a pure function of `(config, n, seed)` — the adversary is
//! fixed before the computation starts, hence oblivious.

use apex_baselines::adversary::estimated_subphase_work;
use apex_core::AgreementConfig;
use apex_scheme::tasks::eval_cost;
use apex_sim::{
    AdversarySpec, Group, OverlayKind, ScheduleKind, ScriptSegment, ScriptSpec, Span,
    MAX_ADVERSARY_DEPTH,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tunable shape of the synthesized adversary space.
#[derive(Clone, Debug)]
pub struct SchedGenConfig {
    /// Inclusive range of scripted segments per schedule (0 allows pure
    /// fallback families into the mix).
    pub segments: (usize, usize),
    /// Hard cap on any single window, in ticks (keeps prefixes well under
    /// the harness's clock-stall budget).
    pub max_window: u64,
    /// Replica factor assumed when estimating subphase work.
    pub replicas: usize,
    /// Maximum combinator depth of composed adversaries emitted by
    /// [`generate_adversary`] (1 = base schedules only).
    pub max_depth: usize,
}

impl Default for SchedGenConfig {
    fn default() -> Self {
        SchedGenConfig {
            segments: (0, 5),
            max_window: 50_000,
            replicas: 2,
            max_depth: 3,
        }
    }
}

/// Estimated work per subphase for an `n`-processor scheme run (window
/// scaling unit).
pub fn subphase_hint(n: usize, replicas: usize) -> u64 {
    let cfg = AgreementConfig::for_n(n.max(2), eval_cost(replicas));
    estimated_subphase_work(&cfg).max(64)
}

/// A window of roughly `quarters/4` subphases, capped.
fn window(rng: &mut SmallRng, subphase: u64, max_window: u64) -> u64 {
    let quarters = rng.gen_range(1u64..9); // ¼ to 2 subphases
    (subphase * quarters / 4).clamp(1, max_window)
}

fn random_proper_subset(rng: &mut SmallRng, n: usize, max_len: usize) -> Vec<usize> {
    let len = rng.gen_range(1..max_len.max(2));
    let mut procs: Vec<usize> = (0..n).collect();
    for i in (1..procs.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        procs.swap(i, j);
    }
    procs.truncate(len.min(n.saturating_sub(1)).max(1));
    procs.sort_unstable();
    procs
}

/// Generate one adversary for an `n`-processor machine from `seed`.
pub fn generate_schedule(config: &SchedGenConfig, n: usize, seed: u64) -> ScheduleKind {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xADBE_EF5C_0DD5);
    let subphase = subphase_hint(n, config.replicas);
    let n_segments = rng.gen_range(config.segments.0..config.segments.1 + 1);

    let mut segments = Vec::with_capacity(n_segments);
    for _ in 0..n_segments {
        let seg = match rng.gen_range(0u32..3) {
            // Tardy-writer / loaded gun: one processor hogs a window.
            0 => ScriptSegment::Run {
                proc: rng.gen_range(0..n),
                ticks: window(&mut rng, subphase, config.max_window),
            },
            // Phase-aligned starvation: freeze a subset for ~a subphase.
            1 => {
                let excluded = random_proper_subset(&mut rng, n, n / 2 + 1);
                let active = (n - excluded.len()) as u64;
                let rounds = (window(&mut rng, subphase, config.max_window) / active).max(1);
                ScriptSegment::AllExcept { excluded, rounds }
            }
            // Skewed rotation over a subset.
            _ => {
                let procs = random_proper_subset(&mut rng, n, n);
                let rounds =
                    (window(&mut rng, subphase, config.max_window) / procs.len() as u64).max(1);
                ScriptSegment::RoundRobin { procs, rounds }
            }
        };
        segments.push(seg);
    }

    let fallback = match rng.gen_range(0u32..7) {
        0 => ScheduleKind::RoundRobin,
        1 => ScheduleKind::Bursty {
            mean_burst: rng.gen_range(4u64..129),
        },
        2 => {
            // Sleep lengths around the resonant 1–2 subphase band, where
            // stale wake-ups straddle subphase parities (E10's regime).
            let quarters = rng.gen_range(4u64..9);
            ScheduleKind::Sleepy {
                sleepy_frac: rng.gen_range(0.1..0.6),
                awake: (subphase / 64).max(32),
                asleep: (subphase * quarters / 4).max(256),
            }
        }
        3 => ScheduleKind::TwoClass {
            slow_frac: rng.gen_range(0.1..0.6),
            ratio: rng.gen_range(2.0..32.0),
        },
        4 => ScheduleKind::Zipf {
            s: rng.gen_range(0.2..1.8),
        },
        5 => ScheduleKind::Crash {
            crash_frac: rng.gen_range(0.1..0.5),
            horizon: (subphase * 4).max(1024),
        },
        _ => ScheduleKind::Uniform,
    };

    let spec = ScriptSpec::new(n, segments).fallback(fallback);
    debug_assert_eq!(spec.validate(), Ok(()));
    ScheduleKind::Scripted(spec)
}

/// Generate one *composed* adversary for an `n`-processor machine: a
/// random well-formed [`AdversarySpec`] tree up to `config.max_depth`
/// combinator levels deep, with the scripted generator
/// ([`generate_schedule`]) at the leaves. Everything remains a pure
/// function of `(config, n, seed)`, hence oblivious; every emission
/// passes [`AdversarySpec::validate`] by construction (asserted in
/// debug builds).
pub fn generate_adversary(config: &SchedGenConfig, n: usize, seed: u64) -> AdversarySpec {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0_4B1A_7EE5);
    let subphase = subphase_hint(n, config.replicas);
    // Clamp so an over-eager config can never emit a tree that
    // `AdversarySpec::build` would reject mid-campaign.
    let depth = config.max_depth.min(MAX_ADVERSARY_DEPTH);
    let spec = gen_spec(config, n, subphase, depth, &mut rng);
    debug_assert_eq!(spec.validate(n), Ok(()));
    spec
}

fn gen_spec(
    config: &SchedGenConfig,
    n: usize,
    subphase: u64,
    depth: usize,
    rng: &mut SmallRng,
) -> AdversarySpec {
    // Leaves: the scripted generator already mixes starvation prefixes
    // with every fallback family. Half the draws stop at a leaf so
    // shallow trees stay common; partitions need ≥ 2 procs per side.
    let leaf = |rng: &mut SmallRng| AdversarySpec::Base(generate_schedule(config, n, rng.gen()));
    if depth <= 1 || rng.gen_range(0u32..2) == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0u32..4) {
        // Overlay: a fault pattern on any sub-adversary.
        0 => {
            let layer = if rng.gen_range(0u32..2) == 0 {
                OverlayKind::Crash {
                    crash_frac: rng.gen_range(0.1..0.5),
                    horizon: (subphase * 4).max(1024),
                }
            } else {
                let quarters = rng.gen_range(4u64..9);
                OverlayKind::Sleepy {
                    sleepy_frac: rng.gen_range(0.1..0.6),
                    awake: (subphase / 64).max(32),
                    asleep: (subphase * quarters / 4).max(256),
                }
            };
            AdversarySpec::Overlay {
                layer,
                base: Box::new(gen_spec(config, n, subphase, depth - 1, rng)),
            }
        }
        // Phase switch: 1–2 subphase-scaled windows, then a tail.
        1 => {
            let n_spans = rng.gen_range(1usize..3);
            let spans = (0..n_spans)
                .map(|_| Span {
                    ticks: (subphase * rng.gen_range(1u64..9) / 4).clamp(1, config.max_window),
                    spec: gen_spec(config, n, subphase, depth - 1, rng),
                })
                .collect();
            AdversarySpec::PhaseSwitch {
                spans,
                tail: Box::new(gen_spec(config, n, subphase, depth - 1, rng)),
            }
        }
        // Partition: split the machine at a random contiguous boundary.
        2 if n >= 4 => {
            let cut = rng.gen_range(2..n - 1);
            let groups = [(0, cut), (cut, n)]
                .into_iter()
                .map(|(lo, hi)| Group {
                    procs: (lo..hi).collect(),
                    spec: gen_spec(config, hi - lo, subphase, depth - 1, rng),
                })
                .collect();
            AdversarySpec::Partition { groups }
        }
        // Scale: a small per-processor speed warp.
        3 => AdversarySpec::Scale {
            factors: (0..n).map(|_| rng.gen_range(1u64..9)).collect(),
            base: Box::new(gen_spec(config, n, subphase, depth - 1, rng)),
        },
        _ => leaf(rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_schedules_validate_and_are_reproducible() {
        let cfg = SchedGenConfig::default();
        for seed in 0..40 {
            for n in [2usize, 4, 8] {
                let a = generate_schedule(&cfg, n, seed);
                let b = generate_schedule(&cfg, n, seed);
                assert_eq!(a, b, "seed {seed} n {n}");
                let ScheduleKind::Scripted(spec) = &a else {
                    panic!("generator must emit scripted kinds");
                };
                assert_eq!(spec.validate(), Ok(()));
                assert_eq!(spec.n, n);
                assert!(spec.prefix_ticks() <= cfg.max_window * (cfg.segments.1 as u64));
            }
        }
    }

    #[test]
    fn generated_schedules_build_and_are_total() {
        let cfg = SchedGenConfig::default();
        for seed in 0..10 {
            let kind = generate_schedule(&cfg, 4, seed);
            let mut s = kind.build(4, seed);
            let mut hist = [0u64; 4];
            for _ in 0..2000 {
                hist[s.next().0] += 1;
            }
            assert_eq!(hist.iter().sum::<u64>(), 2000);
        }
    }

    #[test]
    fn generated_schedules_round_trip_through_json() {
        let cfg = SchedGenConfig::default();
        for seed in 0..10 {
            let kind = generate_schedule(&cfg, 8, seed);
            let text = kind.to_json().render();
            let back = ScheduleKind::from_json(&apex_sim::Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, kind);
        }
    }

    #[test]
    fn window_scaling_tracks_subphase_estimate() {
        assert!(subphase_hint(8, 2) >= 64);
        assert!(subphase_hint(64, 2) > subphase_hint(8, 2));
    }

    #[test]
    fn generated_adversaries_validate_and_are_reproducible() {
        let cfg = SchedGenConfig::default();
        for seed in 0..60 {
            for n in [4usize, 8] {
                let a = generate_adversary(&cfg, n, seed);
                let b = generate_adversary(&cfg, n, seed);
                assert_eq!(a, b, "seed {seed} n {n}");
                assert_eq!(a.validate(n), Ok(()), "seed {seed} n {n}");
                assert!(a.depth() <= cfg.max_depth);
            }
        }
    }

    #[test]
    fn generated_adversaries_reach_composed_depth() {
        let cfg = SchedGenConfig::default();
        let deepest = (0..60)
            .map(|seed| generate_adversary(&cfg, 8, seed).depth())
            .max()
            .unwrap();
        assert!(
            deepest >= 2,
            "no composition in 60 draws (max depth {deepest})"
        );
    }

    #[test]
    fn generated_adversaries_round_trip_through_json_and_build() {
        let cfg = SchedGenConfig::default();
        for seed in 0..15 {
            let spec = generate_adversary(&cfg, 8, seed);
            let text = spec.to_json().render();
            let back = AdversarySpec::from_json(&apex_sim::Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec);
            let mut s = spec.build(8, seed);
            let mut hist = [0u64; 8];
            for _ in 0..2000 {
                hist[s.next().0] += 1;
            }
            assert_eq!(hist.iter().sum::<u64>(), 2000);
        }
    }
}
