//! Fuzz campaigns: sweep seeded triples through the differential oracle.
//!
//! A campaign is a pure function of its seed and size: triple `i` is
//! generated from `seed + i`, run through [`SchemeKind::Nondet`] (must be
//! clean — Theorem 1), and, when the program is nondeterministic, also
//! through [`SchemeKind::DetBaseline`] (divergences are *findings*, the
//! E10 failure mode reproduced from synthesized scenarios). Trials fan out
//! across cores on the [`apex_bench::runner`] parallel trial runner;
//! results are collected in config order, so a campaign's outcome is
//! byte-identical at any thread count.

use std::time::Instant;

use apex_bench::runner::run_trials;
use apex_scheme::SchemeKind;

use crate::gen::{generate_nondet_program, generate_program, GenConfig};
use crate::oracle::{check_triple, Triple, Verdict};
use crate::sched_gen::{generate_adversary, SchedGenConfig};

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Triples to generate (seeds `seed..seed+trials`).
    pub trials: usize,
    /// Base seed of the sweep.
    pub seed: u64,
    /// Program-space shape.
    pub gen: GenConfig,
    /// Adversary-space shape.
    pub sched: SchedGenConfig,
    /// Run the DetBaseline differential leg on nondeterministic programs.
    pub det_leg: bool,
    /// Run the comparator legs ([`SchemeKind::ScanConsensus`] and
    /// [`SchemeKind::IdealCas`]) on every triple. Both are expected to be
    /// clean — divergences land in
    /// [`CampaignOutcome::comparator_divergences`] and are bugs.
    pub comparator_legs: bool,
    /// Force every program nondeterministic (maximizes the differential
    /// leg's coverage).
    pub nondet_only: bool,
    /// Wall-clock box; generation stops at the next chunk boundary after
    /// the deadline (used by the CI smoke stage).
    pub max_secs: Option<f64>,
    /// Trials per runner dispatch (chunking bounds memory and gives the
    /// deadline a check point).
    pub chunk: usize,
}

impl CampaignConfig {
    /// Default shape for `trials` triples from `seed`.
    pub fn new(trials: usize, seed: u64) -> Self {
        CampaignConfig {
            trials,
            seed,
            gen: GenConfig::default(),
            sched: SchedGenConfig::default(),
            det_leg: true,
            comparator_legs: false,
            nondet_only: true,
            max_secs: None,
            chunk: 256,
        }
    }
}

/// One finding: the triple, which scheme, and what the oracle saw.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Index of the triple in the campaign (seed = base seed + index).
    pub index: usize,
    /// The failing scenario.
    pub triple: Triple,
    /// Scheme it failed under.
    pub scheme: SchemeKind,
    /// The oracle's verdict.
    pub verdict: Verdict,
}

/// Aggregate campaign result.
#[derive(Clone, Debug, Default)]
pub struct CampaignOutcome {
    /// Triples actually run (≤ configured when time-boxed).
    pub trials_run: usize,
    /// DetBaseline trials run (nondeterministic programs only).
    pub det_trials_run: usize,
    /// Nondet-scheme divergences — **any entry is a bug** in the paper
    /// scheme or the simulator.
    pub nondet_divergences: Vec<Finding>,
    /// DetBaseline divergences — expected witnesses of prior-work
    /// unsoundness.
    pub det_divergences: Vec<Finding>,
    /// Comparator-leg trials run (two per triple when enabled).
    pub comparator_trials_run: usize,
    /// Comparator-leg divergences — like the Nondet leg, **any entry is a
    /// bug**: both comparators are sound on the synthesized space.
    pub comparator_divergences: Vec<Finding>,
    /// Clock-stall aborts (liveness budget trips, counted per scheme leg).
    pub stalls: usize,
    /// Campaign wall time in seconds.
    pub wall_secs: f64,
}

/// Generate triple `index` of a campaign (public so `gen`/`replay` CLI
/// subcommands and tests can address campaign members directly).
pub fn campaign_triple(cfg: &CampaignConfig, index: usize) -> Triple {
    let seed = cfg.seed.wrapping_add(index as u64);
    let program = if cfg.nondet_only {
        generate_nondet_program(&cfg.gen, seed)
    } else {
        generate_program(&cfg.gen, seed)
    };
    let schedule = generate_adversary(&cfg.sched, program.n_threads, seed);
    Triple {
        program,
        schedule,
        seed,
    }
}

/// Run the campaign. `progress` (when `Some`) is called after every chunk
/// with (triples done, findings so far).
pub fn run_campaign(
    cfg: &CampaignConfig,
    mut progress: Option<&mut dyn FnMut(usize, usize)>,
) -> CampaignOutcome {
    let start = Instant::now();
    let mut outcome = CampaignOutcome::default();
    let mut next = 0usize;
    while next < cfg.trials {
        if let Some(max) = cfg.max_secs {
            if start.elapsed().as_secs_f64() >= max {
                break;
            }
        }
        let end = (next + cfg.chunk.max(1)).min(cfg.trials);
        let indices: Vec<usize> = (next..end).collect();
        // Each worker generates its own triple from the index (cheap and
        // Send-friendly) and runs every enabled oracle leg. All legs of a
        // triple are scenarios differing only in `mode.scheme`
        // ([`Triple::scenario`]).
        type LegResults = (Triple, Verdict, Option<Verdict>, Vec<(SchemeKind, Verdict)>);
        let results: Vec<LegResults> = run_trials(&indices, |&i| {
            let triple = campaign_triple(cfg, i);
            let nondet = check_triple(&triple, SchemeKind::Nondet);
            let det = (cfg.det_leg && triple.program.is_nondeterministic())
                .then(|| check_triple(&triple, SchemeKind::DetBaseline));
            let comparators = if cfg.comparator_legs {
                [SchemeKind::ScanConsensus, SchemeKind::IdealCas]
                    .into_iter()
                    .map(|kind| (kind, check_triple(&triple, kind)))
                    .collect()
            } else {
                Vec::new()
            };
            (triple, nondet, det, comparators)
        });
        for (offset, (triple, nondet, det, comparators)) in results.into_iter().enumerate() {
            let index = next + offset;
            outcome.trials_run += 1;
            outcome.stalls += usize::from(nondet.stalled);
            if nondet.diverged() {
                outcome.nondet_divergences.push(Finding {
                    index,
                    triple: triple.clone(),
                    scheme: SchemeKind::Nondet,
                    verdict: nondet,
                });
            }
            if let Some(det) = det {
                outcome.det_trials_run += 1;
                outcome.stalls += usize::from(det.stalled);
                if det.diverged() {
                    outcome.det_divergences.push(Finding {
                        index,
                        triple: triple.clone(),
                        scheme: SchemeKind::DetBaseline,
                        verdict: det,
                    });
                }
            }
            for (scheme, verdict) in comparators {
                outcome.comparator_trials_run += 1;
                outcome.stalls += usize::from(verdict.stalled);
                if verdict.diverged() {
                    outcome.comparator_divergences.push(Finding {
                        index,
                        triple: triple.clone(),
                        scheme,
                        verdict,
                    });
                }
            }
        }
        next = end;
        if let Some(cb) = progress.as_deref_mut() {
            cb(
                outcome.trials_run,
                outcome.nondet_divergences.len()
                    + outcome.det_divergences.len()
                    + outcome.comparator_divergences.len(),
            );
        }
    }
    outcome.wall_secs = start.elapsed().as_secs_f64();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_on_the_paper_scheme() {
        let cfg = CampaignConfig::new(12, 0xC0FFEE);
        let outcome = run_campaign(&cfg, None);
        assert_eq!(outcome.trials_run, 12);
        assert!(
            outcome.nondet_divergences.is_empty(),
            "{:?}",
            outcome.nondet_divergences
        );
        assert!(outcome.det_trials_run > 0);
    }

    /// The comparator legs (scan-consensus and ideal-CAS) verify clean
    /// over a fixed-seed campaign — the ROADMAP's differential follow-on,
    /// pinned as campaign evidence. (Seed re-pinned when the composed
    /// adversary algebra widened the schedule space: the old stream's
    /// claim holds on the new stream too, just at a different seed — and
    /// the widened space *does* break comparator legs elsewhere, which
    /// `comparator_legs_diverge_under_deep_starvation` pins below.)
    #[test]
    fn comparator_legs_are_clean_on_a_fixed_seed_campaign() {
        let mut cfg = CampaignConfig::new(10, 0xBEE5);
        cfg.det_leg = false;
        cfg.comparator_legs = true;
        let outcome = run_campaign(&cfg, None);
        assert_eq!(outcome.trials_run, 10);
        assert_eq!(outcome.comparator_trials_run, 20);
        assert!(
            outcome.comparator_divergences.is_empty(),
            "{:?}",
            outcome
                .comparator_divergences
                .iter()
                .map(|f| (f.index, f.scheme, f.verdict.clone()))
                .collect::<Vec<_>>()
        );
    }

    /// A finding of the widened adversary space, pinned: a scripted
    /// starvation window (half the machine frozen for ~4 subphases)
    /// makes the ideal-CAS comparator drop a step value — its clock
    /// cadence is oblivious, not completion-gated — while the paper
    /// scheme's agreement layer stays clean on the identical triple. The
    /// shrunk witness is committed as
    /// `corpus/ideal-cas-17ba6fed69bb11e7.json`.
    #[test]
    fn comparator_legs_diverge_under_deep_starvation() {
        use crate::oracle::check_triple;
        let mut cfg = CampaignConfig::new(10, 0xBEEF);
        cfg.det_leg = false;
        cfg.comparator_legs = true;
        let triple = campaign_triple(&cfg, 8);
        let cas = check_triple(&triple, SchemeKind::IdealCas);
        assert!(cas.diverged() && !cas.stalled, "{cas:?}");
        let nondet = check_triple(&triple, SchemeKind::Nondet);
        assert!(!nondet.diverged() && !nondet.stalled, "{nondet:?}");
    }

    #[test]
    fn campaign_members_are_addressable_and_reproducible() {
        let cfg = CampaignConfig::new(4, 99);
        let a = campaign_triple(&cfg, 2);
        let b = campaign_triple(&cfg, 2);
        assert_eq!(a, b);
        assert_eq!(a.seed, 101);
    }

    #[test]
    fn time_box_stops_early() {
        let mut cfg = CampaignConfig::new(1_000_000, 1);
        cfg.max_secs = Some(0.0);
        cfg.chunk = 4;
        let outcome = run_campaign(&cfg, None);
        assert_eq!(outcome.trials_run, 0);
    }
}
