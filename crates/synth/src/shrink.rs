//! Greedy minimization of failing triples.
//!
//! Every candidate reduction re-runs the full oracle; a reduction is kept
//! only if the triple still diverges under the target scheme, so the
//! shrunk artifact witnesses the *same class* of failure as the original.
//! Reductions (applied to fixpoint, within a run budget):
//!
//! 1. drop whole program steps (from the tail first — later steps usually
//!    only propagate the corruption);
//! 2. drop single instructions;
//! 3. drop idle trailing thread columns (remapping the scripted schedule
//!    to the smaller machine);
//! 4. truncate unreferenced tail memory and zero initial values;
//! 5. drop scripted-schedule segments and halve window lengths.
//!
//! Programs are re-validated after every accepted reduction — a shrink can
//! only *remove* accesses, so strict EREW is preserved, and the assert
//! makes that assumption load-bearing.

use apex_scheme::SchemeKind;
use apex_sim::{ScheduleKind, ScriptSegment};

use crate::oracle::{check_triple, Triple};

/// Bookkeeping of one shrink session.
#[derive(Clone, Debug, Default)]
pub struct ShrinkStats {
    /// Oracle runs spent.
    pub runs: usize,
    /// Accepted reductions.
    pub accepted: usize,
    /// (instructions, steps, threads) before.
    pub before: (usize, usize, usize),
    /// (instructions, steps, threads) after.
    pub after: (usize, usize, usize),
}

fn shape(t: &Triple) -> (usize, usize, usize) {
    (
        t.program.n_instructions(),
        t.program.n_steps(),
        t.program.n_threads,
    )
}

/// Minimize `triple` while it keeps diverging under `kind`. `budget` caps
/// oracle runs (each candidate costs one run).
pub fn shrink(triple: &Triple, kind: SchemeKind, budget: usize) -> (Triple, ShrinkStats) {
    let mut stats = ShrinkStats {
        before: shape(triple),
        ..ShrinkStats::default()
    };
    let mut current = triple.clone();
    debug_assert!(
        check_triple(&current, kind).diverged(),
        "shrinking a non-failing triple"
    );

    loop {
        let accepted_this_pass = one_pass(&mut current, kind, budget, &mut stats);
        if !accepted_this_pass || stats.runs >= budget {
            break;
        }
    }
    stats.after = shape(&current);
    (current, stats)
}

/// Try one full round of reductions; returns whether any was accepted.
fn one_pass(
    current: &mut Triple,
    kind: SchemeKind,
    budget: usize,
    stats: &mut ShrinkStats,
) -> bool {
    let mut accepted = false;
    let try_candidate = |current: &mut Triple, candidate: Triple, stats: &mut ShrinkStats| {
        if stats.runs >= budget {
            return false;
        }
        assert_eq!(
            candidate.program.validate(),
            Ok(()),
            "shrink produced an invalid program"
        );
        stats.runs += 1;
        if check_triple(&candidate, kind).diverged() {
            *current = candidate;
            stats.accepted += 1;
            true
        } else {
            false
        }
    };

    // 1. Drop whole steps, tail first.
    let mut step = current.program.n_steps();
    while step > 0 {
        step -= 1;
        if current.program.n_steps() <= 1 {
            break;
        }
        if step >= current.program.n_steps() {
            continue;
        }
        let mut candidate = current.clone();
        candidate.program.steps.remove(step);
        accepted |= try_candidate(current, candidate, stats);
    }

    // 2. Drop single instructions.
    for step in (0..current.program.n_steps()).rev() {
        for thread in 0..current.program.n_threads {
            if current.program.instr(step, thread).is_none() {
                continue;
            }
            let mut candidate = current.clone();
            candidate.program.steps[step][thread] = None;
            accepted |= try_candidate(current, candidate, stats);
        }
    }

    // 3. Drop idle trailing thread columns (keep n ≥ 2 for the agreement
    //    layout) and remap the schedule to the smaller machine.
    while current.program.n_threads > 2 {
        let last = current.program.n_threads - 1;
        let idle = current.program.steps.iter().all(|row| row[last].is_none());
        if !idle {
            break;
        }
        let mut candidate = current.clone();
        for row in &mut candidate.program.steps {
            row.pop();
        }
        candidate.program.n_threads = last;
        candidate.schedule = narrow_schedule(&candidate.schedule, last);
        if !try_candidate(current, candidate, stats) {
            break;
        }
        accepted = true;
    }

    // 4a. Truncate unreferenced tail memory.
    let max_ref = current
        .program
        .steps
        .iter()
        .flat_map(|row| row.iter().flatten())
        .flat_map(|i| i.reads().chain([i.dst]))
        .max();
    let needed = max_ref.map_or(1, |m| m + 1);
    if needed < current.program.mem_size {
        let mut candidate = current.clone();
        candidate.program.mem_size = needed;
        candidate.program.init.truncate(needed);
        accepted |= try_candidate(current, candidate, stats);
    }

    // 4b. Zero initial values one at a time.
    for var in 0..current.program.mem_size {
        if current.program.init[var] == 0 {
            continue;
        }
        let mut candidate = current.clone();
        candidate.program.init[var] = 0;
        accepted |= try_candidate(current, candidate, stats);
    }

    // 5. Schedule reductions (scripted adversaries only).
    if let ScheduleKind::Scripted(spec) = &current.schedule {
        // Drop segments, tail first.
        for i in (0..spec.segments.len()).rev() {
            let ScheduleKind::Scripted(cur_spec) = &current.schedule else {
                break;
            };
            if i >= cur_spec.segments.len() {
                continue;
            }
            let mut new_spec = cur_spec.clone();
            new_spec.segments.remove(i);
            let mut candidate = current.clone();
            candidate.schedule = ScheduleKind::Scripted(new_spec);
            accepted |= try_candidate(current, candidate, stats);
        }
        // Halve window lengths.
        if let ScheduleKind::Scripted(cur_spec) = &current.schedule {
            for i in 0..cur_spec.segments.len() {
                let ScheduleKind::Scripted(cur_spec) = &current.schedule else {
                    break;
                };
                let mut new_spec = cur_spec.clone();
                let halved = match &mut new_spec.segments[i] {
                    ScriptSegment::Run { ticks, .. } if *ticks > 1 => {
                        *ticks /= 2;
                        true
                    }
                    ScriptSegment::RoundRobin { rounds, .. }
                    | ScriptSegment::AllExcept { rounds, .. }
                        if *rounds > 1 =>
                    {
                        *rounds /= 2;
                        true
                    }
                    _ => false,
                };
                if !halved {
                    continue;
                }
                let mut candidate = current.clone();
                candidate.schedule = ScheduleKind::Scripted(new_spec);
                accepted |= try_candidate(current, candidate, stats);
            }
        }
    }

    accepted
}

/// Rewrite a schedule for a machine one processor smaller: scripted
/// segments drop references to removed processors (clamping `Run`
/// targets); other families are size-agnostic.
fn narrow_schedule(schedule: &ScheduleKind, n: usize) -> ScheduleKind {
    let ScheduleKind::Scripted(spec) = schedule else {
        return schedule.clone();
    };
    let mut new_spec = spec.clone();
    new_spec.n = n;
    new_spec.segments.retain_mut(|seg| match seg {
        ScriptSegment::Run { proc, .. } => {
            if *proc >= n {
                *proc = n - 1;
            }
            true
        }
        ScriptSegment::RoundRobin { procs, .. } => {
            procs.retain(|p| *p < n);
            !procs.is_empty()
        }
        ScriptSegment::AllExcept { excluded, rounds } => {
            excluded.retain(|p| *p < n);
            // Guard the validate() rule: a segment must not starve everyone.
            *rounds > 0 && excluded.len() < n
        }
    });
    debug_assert_eq!(new_spec.validate(), Ok(()));
    ScheduleKind::Scripted(new_spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_sim::ScriptSpec;

    #[test]
    fn narrow_schedule_remaps_scripted_segments() {
        let spec = ScriptSpec::new(
            4,
            vec![
                ScriptSegment::Run { proc: 3, ticks: 10 },
                ScriptSegment::RoundRobin {
                    procs: vec![3],
                    rounds: 5,
                },
                ScriptSegment::AllExcept {
                    excluded: vec![1, 3],
                    rounds: 2,
                },
            ],
        );
        let narrowed = narrow_schedule(&ScheduleKind::Scripted(spec), 3);
        let ScheduleKind::Scripted(spec) = narrowed else {
            panic!()
        };
        assert_eq!(spec.n, 3);
        assert_eq!(spec.validate(), Ok(()));
        assert_eq!(
            spec.segments,
            vec![
                ScriptSegment::Run { proc: 2, ticks: 10 },
                ScriptSegment::AllExcept {
                    excluded: vec![1],
                    rounds: 2,
                },
            ]
        );
        // Non-scripted kinds pass through untouched.
        assert_eq!(
            narrow_schedule(&ScheduleKind::Uniform, 3),
            ScheduleKind::Uniform
        );
    }
}
