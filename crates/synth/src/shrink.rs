//! Greedy minimization of failing triples.
//!
//! Every candidate reduction re-runs the full oracle; a reduction is kept
//! only if the triple still diverges under the target scheme, so the
//! shrunk artifact witnesses the *same class* of failure as the original.
//! Reductions (applied to fixpoint, within a run budget):
//!
//! 1. drop whole program steps (from the tail first — later steps usually
//!    only propagate the corruption);
//! 2. drop single instructions, then simplify surviving instructions'
//!    variable operands to constants (each removes a shared-memory read);
//! 3. drop idle trailing thread columns (remapping the schedule
//!    to the smaller machine);
//! 4. truncate unreferenced tail memory and zero initial values;
//! 5. prune adversary-algebra combinator subtrees (peel overlays and
//!    speed warps, drop phase-switch spans, collapse partitions);
//! 6. drop scripted-schedule segments and halve window lengths.
//!
//! Programs are re-validated after every accepted reduction — a shrink can
//! only *remove* accesses, so strict EREW is preserved, and the assert
//! makes that assumption load-bearing.

use apex_pram::Operand;
use apex_scheme::SchemeKind;
use apex_sim::{AdversarySpec, ScheduleKind, ScriptSegment, ScriptSpec, Span};

use crate::oracle::{check_triple, Triple};

/// Bookkeeping of one shrink session.
#[derive(Clone, Debug, Default)]
pub struct ShrinkStats {
    /// Oracle runs spent.
    pub runs: usize,
    /// Accepted reductions.
    pub accepted: usize,
    /// (instructions, steps, threads) before.
    pub before: (usize, usize, usize),
    /// (instructions, steps, threads) after.
    pub after: (usize, usize, usize),
}

fn shape(t: &Triple) -> (usize, usize, usize) {
    (
        t.program.n_instructions(),
        t.program.n_steps(),
        t.program.n_threads,
    )
}

/// Minimize `triple` while it keeps diverging under `kind`. `budget` caps
/// oracle runs (each candidate costs one run).
pub fn shrink(triple: &Triple, kind: SchemeKind, budget: usize) -> (Triple, ShrinkStats) {
    let mut stats = ShrinkStats {
        before: shape(triple),
        ..ShrinkStats::default()
    };
    let mut current = triple.clone();
    debug_assert!(
        check_triple(&current, kind).diverged(),
        "shrinking a non-failing triple"
    );

    loop {
        let accepted_this_pass = one_pass(&mut current, kind, budget, &mut stats);
        if !accepted_this_pass || stats.runs >= budget {
            break;
        }
    }
    stats.after = shape(&current);
    (current, stats)
}

/// Try one full round of reductions; returns whether any was accepted.
fn one_pass(
    current: &mut Triple,
    kind: SchemeKind,
    budget: usize,
    stats: &mut ShrinkStats,
) -> bool {
    let mut accepted = false;
    let try_candidate = |current: &mut Triple, candidate: Triple, stats: &mut ShrinkStats| {
        if stats.runs >= budget {
            return false;
        }
        assert_eq!(
            candidate.program.validate(),
            Ok(()),
            "shrink produced an invalid program"
        );
        stats.runs += 1;
        if check_triple(&candidate, kind).diverged() {
            *current = candidate;
            stats.accepted += 1;
            true
        } else {
            false
        }
    };

    // 1. Drop whole steps, tail first.
    let mut step = current.program.n_steps();
    while step > 0 {
        step -= 1;
        if current.program.n_steps() <= 1 {
            break;
        }
        if step >= current.program.n_steps() {
            continue;
        }
        let mut candidate = current.clone();
        candidate.program.steps.remove(step);
        accepted |= try_candidate(current, candidate, stats);
    }

    // 2. Drop single instructions.
    for step in (0..current.program.n_steps()).rev() {
        for thread in 0..current.program.n_threads {
            if current.program.instr(step, thread).is_none() {
                continue;
            }
            let mut candidate = current.clone();
            candidate.program.steps[step][thread] = None;
            accepted |= try_candidate(current, candidate, stats);
        }
    }

    // 2b. Simplify variable operands to constants (candidates: the
    //     variable's initial value, then 0). Each accepted rewrite
    //     removes one shared-memory read; EREW can only get stricter,
    //     which the validate() assert in try_candidate re-proves.
    for step in (0..current.program.n_steps()).rev() {
        for thread in 0..current.program.n_threads {
            for pick_b in [false, true] {
                let Some(instr) = current.program.instr(step, thread) else {
                    continue;
                };
                let operand = if pick_b { instr.b } else { instr.a };
                let Operand::Var(v) = operand else { continue };
                let init = current.program.init.get(v).copied().unwrap_or(0);
                let consts = if init == 0 { vec![0] } else { vec![init, 0] };
                for value in consts {
                    let Some(instr) = current.program.instr(step, thread) else {
                        break;
                    };
                    let mut simplified = *instr;
                    if pick_b {
                        simplified.b = Operand::Const(value);
                    } else {
                        simplified.a = Operand::Const(value);
                    }
                    let mut candidate = current.clone();
                    candidate.program.steps[step][thread] = Some(simplified);
                    if try_candidate(current, candidate, stats) {
                        accepted = true;
                        break;
                    }
                }
            }
        }
    }

    // 3. Drop idle trailing thread columns (keep n ≥ 2 for the agreement
    //    layout) and remap the schedule to the smaller machine. Trees
    //    whose structure pins processor ids (partitions) skip this
    //    reduction; pass 5 usually collapses them first.
    while current.program.n_threads > 2 {
        let last = current.program.n_threads - 1;
        let idle = current.program.steps.iter().all(|row| row[last].is_none());
        if !idle {
            break;
        }
        let Some(narrowed) = narrow_spec(&current.schedule, last) else {
            break;
        };
        let mut candidate = current.clone();
        for row in &mut candidate.program.steps {
            row.pop();
        }
        candidate.program.n_threads = last;
        candidate.schedule = narrowed;
        if !try_candidate(current, candidate, stats) {
            break;
        }
        accepted = true;
    }

    // 4a. Truncate unreferenced tail memory.
    let max_ref = current
        .program
        .steps
        .iter()
        .flat_map(|row| row.iter().flatten())
        .flat_map(|i| i.reads().chain([i.dst]))
        .max();
    let needed = max_ref.map_or(1, |m| m + 1);
    if needed < current.program.mem_size {
        let mut candidate = current.clone();
        candidate.program.mem_size = needed;
        candidate.program.init.truncate(needed);
        accepted |= try_candidate(current, candidate, stats);
    }

    // 4b. Zero initial values one at a time.
    for var in 0..current.program.mem_size {
        if current.program.init[var] == 0 {
            continue;
        }
        let mut candidate = current.clone();
        candidate.program.init[var] = 0;
        accepted |= try_candidate(current, candidate, stats);
    }

    // 5. Prune adversary-algebra combinator subtrees: repeatedly try the
    //    one-step structural simplifications of the current tree (peel a
    //    combinator, drop a branch) until none survives the oracle.
    loop {
        let n = current.program.n_threads;
        let mut advanced = false;
        for pruned in prune_candidates(&current.schedule) {
            if pruned.validate(n).is_err() {
                continue;
            }
            let mut candidate = current.clone();
            candidate.schedule = pruned;
            if try_candidate(current, candidate, stats) {
                accepted = true;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }

    // 6. Scripted reductions (a scripted base at the root — the common
    //    shape once pruning has collapsed the tree).
    if let Some(spec) = scripted_spec(&current.schedule) {
        // Drop segments, tail first.
        for i in (0..spec.segments.len()).rev() {
            let Some(cur_spec) = scripted_spec(&current.schedule) else {
                break;
            };
            if i >= cur_spec.segments.len() {
                continue;
            }
            let mut new_spec = cur_spec.clone();
            new_spec.segments.remove(i);
            let mut candidate = current.clone();
            candidate.schedule = AdversarySpec::Base(ScheduleKind::Scripted(new_spec));
            accepted |= try_candidate(current, candidate, stats);
        }
        // Halve window lengths.
        if let Some(cur_spec) = scripted_spec(&current.schedule) {
            for i in 0..cur_spec.segments.len() {
                let Some(cur_spec) = scripted_spec(&current.schedule) else {
                    break;
                };
                let mut new_spec = cur_spec.clone();
                let halved = match &mut new_spec.segments[i] {
                    ScriptSegment::Run { ticks, .. } if *ticks > 1 => {
                        *ticks /= 2;
                        true
                    }
                    ScriptSegment::RoundRobin { rounds, .. }
                    | ScriptSegment::AllExcept { rounds, .. }
                        if *rounds > 1 =>
                    {
                        *rounds /= 2;
                        true
                    }
                    _ => false,
                };
                if !halved {
                    continue;
                }
                let mut candidate = current.clone();
                candidate.schedule = AdversarySpec::Base(ScheduleKind::Scripted(new_spec));
                accepted |= try_candidate(current, candidate, stats);
            }
        }
    }

    accepted
}

/// The scripted base spec at the root of an adversary tree, if that is
/// what the tree is.
fn scripted_spec(schedule: &AdversarySpec) -> Option<&ScriptSpec> {
    match schedule {
        AdversarySpec::Base(ScheduleKind::Scripted(spec)) => Some(spec),
        _ => None,
    }
}

/// One-step structural simplifications of an adversary tree: each
/// candidate replaces one combinator node by a child, drops one branch,
/// or collapses a partition — anywhere in the tree. Candidates that do
/// not fit the machine (e.g. a partition group's local spec hoisted to
/// the full width) are filtered by the caller through
/// [`AdversarySpec::validate`].
fn prune_candidates(spec: &AdversarySpec) -> Vec<AdversarySpec> {
    let mut out = Vec::new();
    match spec {
        AdversarySpec::Base(_) => {}
        AdversarySpec::Overlay { layer, base } => {
            out.push((**base).clone());
            for c in prune_candidates(base) {
                out.push(AdversarySpec::Overlay {
                    layer: *layer,
                    base: Box::new(c),
                });
            }
        }
        AdversarySpec::Scale { factors, base } => {
            out.push((**base).clone());
            for c in prune_candidates(base) {
                out.push(AdversarySpec::Scale {
                    factors: factors.clone(),
                    base: Box::new(c),
                });
            }
        }
        AdversarySpec::PhaseSwitch { spans, tail } => {
            out.push((**tail).clone());
            for i in 0..spans.len() {
                if spans.len() > 1 {
                    let mut s = spans.clone();
                    s.remove(i);
                    out.push(AdversarySpec::PhaseSwitch {
                        spans: s,
                        tail: tail.clone(),
                    });
                }
            }
            for (i, span) in spans.iter().enumerate() {
                for c in prune_candidates(&span.spec) {
                    let mut s = spans.clone();
                    s[i] = Span {
                        ticks: span.ticks,
                        spec: c,
                    };
                    out.push(AdversarySpec::PhaseSwitch {
                        spans: s,
                        tail: tail.clone(),
                    });
                }
            }
            for c in prune_candidates(tail) {
                out.push(AdversarySpec::PhaseSwitch {
                    spans: spans.clone(),
                    tail: Box::new(c),
                });
            }
        }
        AdversarySpec::Partition { groups } => {
            // Hoist a group's sub-adversary over the whole machine (only
            // size-agnostic specs survive the caller's validate filter),
            // or fall all the way back to uniform.
            for g in groups {
                out.push(g.spec.clone());
            }
            out.push(AdversarySpec::Base(ScheduleKind::Uniform));
            for (i, g) in groups.iter().enumerate() {
                for c in prune_candidates(&g.spec) {
                    let mut gs = groups.clone();
                    gs[i].spec = c;
                    out.push(AdversarySpec::Partition { groups: gs });
                }
            }
        }
    }
    out
}

/// Rewrite an adversary tree for a machine one processor smaller:
/// scripted segments drop references to removed processors (clamping
/// `Run` targets), scale vectors lose their last factor, overlays and
/// phase switches narrow recursively; partitions pin processor ids and
/// cannot be narrowed (`None` — the caller then keeps the thread).
fn narrow_spec(schedule: &AdversarySpec, n: usize) -> Option<AdversarySpec> {
    match schedule {
        AdversarySpec::Base(kind) => Some(AdversarySpec::Base(narrow_kind(kind, n))),
        AdversarySpec::Overlay { layer, base } => Some(AdversarySpec::Overlay {
            layer: *layer,
            base: Box::new(narrow_spec(base, n)?),
        }),
        AdversarySpec::Scale { factors, base } => {
            let mut factors = factors.clone();
            factors.truncate(n);
            Some(AdversarySpec::Scale {
                factors,
                base: Box::new(narrow_spec(base, n)?),
            })
        }
        AdversarySpec::PhaseSwitch { spans, tail } => Some(AdversarySpec::PhaseSwitch {
            spans: spans
                .iter()
                .map(|s| {
                    narrow_spec(&s.spec, n).map(|spec| Span {
                        ticks: s.ticks,
                        spec,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
            tail: Box::new(narrow_spec(tail, n)?),
        }),
        AdversarySpec::Partition { .. } => None,
    }
}

/// [`narrow_spec`] for one base family; non-scripted families are
/// size-agnostic.
fn narrow_kind(kind: &ScheduleKind, n: usize) -> ScheduleKind {
    let ScheduleKind::Scripted(spec) = kind else {
        return kind.clone();
    };
    let mut new_spec = spec.clone();
    new_spec.n = n;
    new_spec.segments.retain_mut(|seg| match seg {
        ScriptSegment::Run { proc, .. } => {
            if *proc >= n {
                *proc = n - 1;
            }
            true
        }
        ScriptSegment::RoundRobin { procs, .. } => {
            procs.retain(|p| *p < n);
            !procs.is_empty()
        }
        ScriptSegment::AllExcept { excluded, rounds } => {
            excluded.retain(|p| *p < n);
            // Guard the validate() rule: a segment must not starve everyone.
            *rounds > 0 && excluded.len() < n
        }
    });
    debug_assert_eq!(new_spec.validate(), Ok(()));
    ScheduleKind::Scripted(new_spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_sim::{Group, OverlayKind};

    #[test]
    fn narrow_spec_remaps_scripted_segments() {
        let spec = ScriptSpec::new(
            4,
            vec![
                ScriptSegment::Run { proc: 3, ticks: 10 },
                ScriptSegment::RoundRobin {
                    procs: vec![3],
                    rounds: 5,
                },
                ScriptSegment::AllExcept {
                    excluded: vec![1, 3],
                    rounds: 2,
                },
            ],
        );
        let narrowed = narrow_spec(&AdversarySpec::Base(ScheduleKind::Scripted(spec)), 3).unwrap();
        let AdversarySpec::Base(ScheduleKind::Scripted(spec)) = narrowed else {
            panic!()
        };
        assert_eq!(spec.n, 3);
        assert_eq!(spec.validate(), Ok(()));
        assert_eq!(
            spec.segments,
            vec![
                ScriptSegment::Run { proc: 2, ticks: 10 },
                ScriptSegment::AllExcept {
                    excluded: vec![1],
                    rounds: 2,
                },
            ]
        );
        // Non-scripted bases pass through untouched.
        assert_eq!(
            narrow_spec(&AdversarySpec::Base(ScheduleKind::Uniform), 3),
            Some(AdversarySpec::Base(ScheduleKind::Uniform))
        );
        // Combinators narrow through; partitions refuse.
        let warped = AdversarySpec::Scale {
            factors: vec![1, 2, 3, 4],
            base: Box::new(AdversarySpec::Base(ScheduleKind::Uniform)),
        };
        let narrowed = narrow_spec(&warped, 3).unwrap();
        assert_eq!(narrowed.validate(3), Ok(()));
        let AdversarySpec::Scale { factors, .. } = &narrowed else {
            panic!()
        };
        assert_eq!(factors, &vec![1, 2, 3]);
        let pinned = AdversarySpec::Partition {
            groups: vec![
                Group {
                    procs: vec![0, 1],
                    spec: AdversarySpec::Base(ScheduleKind::Uniform),
                },
                Group {
                    procs: vec![2, 3],
                    spec: AdversarySpec::Base(ScheduleKind::Uniform),
                },
            ],
        };
        assert_eq!(narrow_spec(&pinned, 3), None);
    }

    /// End-to-end greedy shrink of the campaign's pinned ideal-CAS
    /// finding (the triple behind `corpus/ideal-cas-….json`): the
    /// divergence must survive, the program must get strictly smaller,
    /// and the operand-to-const pass must have rewritten at least one
    /// surviving instruction's variable operand into a constant.
    #[test]
    fn shrink_minimizes_the_pinned_ideal_cas_finding() {
        use crate::campaign::{campaign_triple, CampaignConfig};
        let mut cfg = CampaignConfig::new(10, 0xBEEF);
        cfg.det_leg = false;
        cfg.comparator_legs = true;
        let triple = campaign_triple(&cfg, 8);
        let (small, stats) = shrink(&triple, SchemeKind::IdealCas, 150);
        assert!(
            check_triple(&small, SchemeKind::IdealCas).diverged(),
            "shrunk triple no longer diverges"
        );
        assert!(stats.after.0 < stats.before.0, "{stats:?}");
        // Dropped steps shift positions, so match survivors to their
        // originals by (thread, dst, op) identity.
        let mut const_simplified = 0;
        for row in &small.program.steps {
            for (thread, instr) in row.iter().enumerate() {
                let Some(new) = instr else { continue };
                let Some(old) = triple
                    .program
                    .steps
                    .iter()
                    .filter_map(|r| r[thread].as_ref())
                    .find(|old| old.dst == new.dst && old.op == new.op)
                else {
                    continue;
                };
                let became_const = |o: &Operand, n: &Operand| {
                    matches!(o, Operand::Var(_)) && matches!(n, Operand::Const(_))
                };
                if became_const(&old.a, &new.a) || became_const(&old.b, &new.b) {
                    const_simplified += 1;
                }
            }
        }
        assert!(
            const_simplified >= 1,
            "operand-to-const never fired: {:?}",
            small.program
        );
    }

    #[test]
    fn prune_candidates_cover_every_combinator() {
        let spec = AdversarySpec::PhaseSwitch {
            spans: vec![Span {
                ticks: 100,
                spec: AdversarySpec::Overlay {
                    layer: OverlayKind::Crash {
                        crash_frac: 0.25,
                        horizon: 64,
                    },
                    base: Box::new(AdversarySpec::Base(ScheduleKind::Zipf { s: 1.0 })),
                },
            }],
            tail: Box::new(AdversarySpec::Partition {
                groups: vec![
                    Group {
                        procs: vec![0, 1],
                        spec: AdversarySpec::Base(ScheduleKind::Bursty { mean_burst: 8 }),
                    },
                    Group {
                        procs: vec![2, 3],
                        spec: AdversarySpec::Base(ScheduleKind::Uniform),
                    },
                ],
            }),
        };
        let candidates = prune_candidates(&spec);
        // The tail alone (partition hoisted to root).
        assert!(candidates
            .iter()
            .any(|c| matches!(c, AdversarySpec::Partition { .. })));
        // The overlay peeled inside the span.
        assert!(candidates.iter().any(|c| matches!(
            c,
            AdversarySpec::PhaseSwitch { spans, .. }
                if matches!(spans[0].spec, AdversarySpec::Base(ScheduleKind::Zipf { .. }))
        )));
        // Every candidate is strictly structurally smaller, so greedy
        // pruning terminates.
        fn size(s: &AdversarySpec) -> usize {
            match s {
                AdversarySpec::Base(_) => 1,
                AdversarySpec::Overlay { base, .. } | AdversarySpec::Scale { base, .. } => {
                    1 + size(base)
                }
                AdversarySpec::PhaseSwitch { spans, tail } => {
                    1 + spans.iter().map(|s| size(&s.spec)).sum::<usize>() + size(tail)
                }
                AdversarySpec::Partition { groups } => {
                    1 + groups.iter().map(|g| size(&g.spec)).sum::<usize>()
                }
            }
        }
        for c in &candidates {
            assert!(size(c) < size(&spec), "{c:?}");
        }
        // Candidates that fit a 4-processor machine exist.
        assert!(candidates.iter().any(|c| c.validate(4).is_ok()));
    }
}
