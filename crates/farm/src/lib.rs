//! # apex-farm — a memoizing campaign service over the lab store
//!
//! The paper's subject is executing nondeterministic parallel programs
//! efficiently on asynchronous machines; this crate makes the campaign
//! layer itself such a system. It is the shape of a queue-dispatch
//! asynchronous system: uncoordinated workers drain a dispatch queue at
//! arbitrary relative speeds, and correctness is checked mechanically
//! rather than assumed — here for free, because every result write is
//! content-addressed and idempotent, so the only thing workers ever
//! race on is *who does the work*, never *what the bytes are*.
//!
//! Three pieces:
//!
//! * [`FarmQueue`] — a file-based work queue (`apex farm submit`
//!   enqueues a suite document; entries are content-addressed and
//!   idempotent like everything else);
//! * [`run_worker`] — drain the queue ([`apex farm worker`]): lease
//!   cell shards with fsynced lease files whose expiry is
//!   *operation-indexed* on the suite journal (never wall-clock), answer
//!   cells from verified store bytes, execute only true misses, and
//!   finalize each suite with a manifest byte-identical to a
//!   single-runner run. Any two workers that produce bytes for the same
//!   cell are diffed against each other ([`Divergence`]) — a free
//!   integrity check on the whole deterministic pipeline;
//! * [`query`] — the front-end (`apex farm query`): answer a single
//!   scenario from cache, or enqueue it as a one-cell suite for the
//!   workers.
//!
//! A crashed worker leaves, at worst, a journal prefix, verified
//! records, and a lease that lapses once the operation clock passes its
//! ttl — after which any worker (or `apex lab fsck`, which *reclaims*
//! rather than quarantines leases) takes the shard over. Nothing a
//! worker does requires coordination beyond the lease, and the lease
//! itself is only an optimization against duplicated work.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod query;
mod queue;
mod worker;

pub use query::{query, QueryAnswer};
pub use queue::{FarmQueue, FarmStatus, SuiteProgress, DEFAULT_QUEUE_ROOT};
pub use worker::{
    run_worker, Divergence, WorkerOpts, WorkerReport, DEFAULT_SHARD_CELLS, DEFAULT_TTL,
};
