//! The farm worker: drain queued suites by leasing cell shards.
//!
//! Per suite, the worker sweeps the shard list; for each shard it can
//! claim (no lease, its own lease, or a torn/expired one), it appends
//! `claimed` journal entries for the shard's unterminated cells, runs
//! them on the shared trial runner (thread fan-out via the workspace's
//! one resolver, [`resolve_threads`]), writes records content-addressed,
//! and appends `committed`/`poisoned` — the exact per-cell protocol of
//! `apex suite run`, so the journal replays identically and fsck needs
//! no new record rules. Once every cell of a suite is terminal, whoever
//! gets there finalizes: outcomes are reconstructed from verified
//! records (and journal `poisoned` entries for record-less cells),
//! assembled through the runner's own finish path, and the manifest
//! written — byte-identical to a single-worker run.
//!
//! **Stalls cannot deadlock.** Lease expiry is operation-indexed on the
//! journal; when a sweep makes no progress because another worker holds
//! every remaining shard, this worker appends a probe entry (a duplicate
//! `claimed` — journals are telemetry, not store identity) to advance
//! the clock. A live holder keeps appending and stays ahead of its ttl;
//! a dead one's lease lapses after at most `ttl` probes and the shard is
//! taken over. Stealing from a *slow but live* holder is safe too:
//! record writes are idempotent, and any byte disagreement between two
//! workers' results for one cell is surfaced as a [`Divergence`] instead
//! of being silently overwritten.

use apex_bench::runner::{resolve_threads, run_trials_threaded};
use apex_lab::{
    assemble_run, json_diff, lease_dir, lease_path, next_finish_seq, read_journal, read_leases,
    CacheLookup, Cell, FaultInjector, Journal, JournalEntry, LabStore, Lease, Manifest, Suite,
    CELL_PANIC_MARKER,
};
use apex_obs::{Metrics, Obs, ObsOpts, POW2_BOUNDS};
use apex_scenario::{CacheStats, ExecMode, ExecStats, RunOutcome};
use apex_sim::Json;

use crate::queue::FarmQueue;

/// Default cells per shard (the lease granularity).
pub const DEFAULT_SHARD_CELLS: usize = 4;

/// Default lease ttl in journal appends.
pub const DEFAULT_TTL: u64 = 32;

/// Options for [`run_worker`].
#[derive(Clone, Debug)]
pub struct WorkerOpts {
    /// Worker identifier (lands in lease files; diagnostic only).
    pub worker: String,
    /// Cells per shard — the unit of lease-based work stealing.
    pub shard_cells: usize,
    /// Lease ttl, in journal appends (operation clock, never wall-clock).
    pub ttl: u64,
    /// Explicit thread count for cell execution (`None` resolves through
    /// [`resolve_threads`]: `APEX_RUNNER_THREADS`, else all cores —
    /// identical semantics to `apex suite run --threads`).
    pub threads: Option<usize>,
    /// Runtime execution-engine override for kernel-mode cells (intra-run
    /// parallelism *inside* each cell, orthogonal to `threads`' across-cell
    /// fan-out). Never changes a result byte, so workers running different
    /// engines still converge to one record set.
    pub exec: Option<ExecMode>,
    /// Runtime interpreter-engine override for scheme-mode cells. Like
    /// `exec`, it never changes a result byte, so workers running
    /// different interpreters still converge to one record set.
    pub engine: Option<apex_scenario::ProgramEngine>,
    /// Telemetry plane ([`apex_obs::ObsOpts`]). With `metrics` on, the
    /// worker writes a per-suite `metrics-<worker>.json` shard beside the
    /// suite's records; `apex obs metrics --merge` folds the shards into
    /// the same result-plane aggregate a serial run produces. With a
    /// trace path, lease-acquire/probe/expire seams and per-cell engine
    /// events are recorded. Telemetry never changes a stored byte.
    pub obs: ObsOpts,
}

impl Default for WorkerOpts {
    fn default() -> Self {
        WorkerOpts {
            worker: format!("worker-{}", std::process::id()),
            shard_cells: DEFAULT_SHARD_CELLS,
            ttl: DEFAULT_TTL,
            threads: None,
            exec: None,
            engine: None,
            obs: ObsOpts::off(),
        }
    }
}

/// Two workers produced different bytes for one cell — the free
/// integrity check the merger performs. The first durable record stays
/// ground truth; the disagreement is reported with JSON-path precision.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Suite the cell belongs to.
    pub suite: String,
    /// The cell's scenario digest.
    pub cell: String,
    /// JSON paths that differ between the stored and fresh documents
    /// (byte-level detail when the documents do not even parse).
    pub paths: Vec<String>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "divergent results for cell {} of suite {}: {}",
            self.cell,
            self.suite,
            self.paths.join("; ")
        )
    }
}

/// What one [`run_worker`] invocation did.
#[derive(Clone, Debug, Default)]
pub struct WorkerReport {
    /// Queue entries visited.
    pub suites: usize,
    /// Cells this worker actually executed.
    pub executed: usize,
    /// Memoization tally across the first scan of every visited suite.
    pub cache: CacheStats,
    /// Suites this worker finalized (wrote the manifest + `finished`).
    pub finalized: Vec<String>,
    /// Byte disagreements between this worker's results and records
    /// already in the store (empty on a healthy deterministic pipeline).
    pub divergences: Vec<Divergence>,
}

impl WorkerReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "worker: {} suites, {} executed, {} — finalized {}, {} divergences",
            self.suites,
            self.executed,
            self.cache.summary(),
            self.finalized.len(),
            self.divergences.len()
        )
    }
}

/// Drain every queued suite: claim shards, execute misses, finalize
/// completed suites. Returns when the whole queue is drained. Injected
/// faults (via the store's [`FaultInjector`]) surface as `Err`, exactly
/// like a crashed worker process.
pub fn run_worker(
    queue: &FarmQueue,
    store: &LabStore,
    opts: &WorkerOpts,
) -> Result<WorkerReport, String> {
    let mut report = WorkerReport::default();
    let obs = opts
        .obs
        .open_trace()
        .map_err(|e| format!("trace open failed: {e}"))?;
    for (digest, suite) in queue.entries()? {
        report.suites += 1;
        drain_suite(store, &digest, &suite, opts, &obs, &mut report)?;
    }
    obs.flush();
    Ok(report)
}

/// Is this cell terminal — a verified record on disk, or a journal
/// `poisoned`/`exhausted` entry?
fn terminal(store: &LabStore, digest: &str, cell: &Cell, poisoned: &[u64]) -> bool {
    if poisoned.contains(&(cell.index as u64)) {
        return true;
    }
    matches!(
        store.lookup_record(digest, &cell.digest, None),
        CacheLookup::Hit(..)
    )
}

/// Drain one suite, then (with `--metrics`) write this worker's
/// per-suite metrics shard — `metrics-<worker>.json` beside the records,
/// excluded from byte-identity like every telemetry sidecar.
fn drain_suite(
    store: &LabStore,
    digest: &str,
    suite: &Suite,
    opts: &WorkerOpts,
    obs: &Obs,
    report: &mut WorkerReport,
) -> Result<(), String> {
    let mut metrics = Metrics::new();
    drain_suite_inner(store, digest, suite, opts, obs, report, &mut metrics)?;
    if opts.obs.metrics && !metrics.is_empty() {
        let path = store
            .suite_dir(digest)
            .join(format!("metrics-{}.json", opts.worker));
        store
            .write_text(&path, &metrics.render_pretty())
            .map_err(|e| format!("metrics write failed: {e}"))?;
    }
    Ok(())
}

/// What one executed cell contributed, held back until the journal
/// says whether this worker *owns* the cell (see
/// [`attribute_result_plane`]).
struct CellTally {
    ok: bool,
    status: &'static str,
    ticks: Option<u64>,
    stats: ExecStats,
}

/// Fold the tallies of every cell this worker owns into its metrics
/// shard. Ownership is the first terminal (`committed`/`poisoned`)
/// journal entry per index: the journal is one totally-ordered file
/// all workers share, so every worker computes the same attribution
/// and a doubly-executed cell (a lease stolen from a slow-but-live
/// holder) lands in exactly one shard. Merging the shards therefore
/// reproduces a serial run's result plane, not the fleet's raw
/// (duplicate-inflated) work — which is tallied separately under the
/// coordination-plane `farm.executions` counter.
fn attribute_result_plane(
    store: &LabStore,
    digest: &str,
    worker: &str,
    tallies: &std::collections::BTreeMap<u64, CellTally>,
    metrics: &mut Metrics,
) {
    let state = read_journal(&store.journal_path(digest)).unwrap_or_default();
    let mut seen = std::collections::BTreeSet::new();
    for entry in &state.entries {
        let (index, by) = match entry {
            JournalEntry::Committed { index, by, .. } => (*index, by),
            JournalEntry::Poisoned { index, by, .. } => (*index, by),
            _ => continue,
        };
        if !seen.insert(index) || by != worker {
            continue;
        }
        let Some(t) = tallies.get(&index) else {
            continue;
        };
        metrics.add("cells.executed", 1);
        if t.ok {
            metrics.add("cells.ok", 1);
        }
        match t.status {
            "exhausted" => metrics.add("cells.exhausted", 1),
            "poisoned" => metrics.add("cells.poisoned", 1),
            _ => {}
        }
        if let Some(ticks) = t.ticks {
            metrics.add("ticks.executed", ticks);
            metrics.observe_with("cells.ticks", &POW2_BOUNDS, ticks);
        }
        metrics.add("exec.windows", t.stats.windows);
        metrics.add("exec.conflicts", t.stats.conflicts);
        metrics.add("exec.serial_reruns", t.stats.serial_reruns);
        metrics.gauge_max("exec.workers", t.stats.workers as u64);
    }
}

fn drain_suite_inner(
    store: &LabStore,
    digest: &str,
    suite: &Suite,
    opts: &WorkerOpts,
    obs: &Obs,
    report: &mut WorkerReport,
    metrics: &mut Metrics,
) -> Result<(), String> {
    let cells = suite.expand()?;
    // Seed every result-plane key so a shard that executes (or owns)
    // nothing still merges to the exact key set a serial run writes (a
    // missing counter and a zero counter must be the same document).
    metrics.gauge_max("cells.total", cells.len() as u64);
    metrics.gauge_max("exec.workers", 0);
    for key in [
        "cells.executed",
        "cells.ok",
        "cells.exhausted",
        "cells.poisoned",
        "ticks.executed",
        "exec.windows",
        "exec.conflicts",
        "exec.serial_reruns",
        "farm.executions",
    ] {
        metrics.add(key, 0);
    }
    // Executed-cell contributions, attributed to shards only once the
    // journal names an owner.
    let mut tallies = std::collections::BTreeMap::new();
    let dir = store.suite_dir(digest);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let journal_path = store.journal_path(digest);
    let mut journal = Journal::new(&journal_path);
    if let Some(f) = store.faults() {
        journal = journal.with_faults(f.clone());
    }
    let jerr = |e: std::io::Error| format!("journal append failed: {e}");

    // First scan: the memoization tally for this visit.
    for cell in &cells {
        let verdict = match store.lookup_record(digest, &cell.digest, None) {
            CacheLookup::Hit(..) => {
                report.cache.hits += 1;
                metrics.add("cache.hits", 1);
                "hit"
            }
            CacheLookup::Miss => {
                report.cache.misses += 1;
                metrics.add("cache.misses", 1);
                "miss"
            }
            CacheLookup::Rejected(_) => {
                report.cache.rejected += 1;
                metrics.add("cache.rejected", 1);
                "rejected"
            }
        };
        obs.emit("farm", "cache", cell.index as u64, verdict, &[]);
    }

    // Fast path: already finalized. Still sweep leases so a crashed
    // worker's debris does not outlive the run it belonged to.
    if read_journal(&journal_path).is_ok_and(|s| s.finished) && store.read_manifest(digest).is_ok()
    {
        reclaim_all_leases(store, digest)?;
        attribute_result_plane(store, digest, &opts.worker, &tallies, metrics);
        return Ok(());
    }

    journal
        .append(&JournalEntry::Started {
            suite: digest.to_string(),
            name: suite.name.clone(),
            cells: cells.len() as u64,
            resumed: journal_path.exists(),
        })
        .map_err(jerr)?;

    let shard_cells = opts.shard_cells.max(1);
    let n_shards = cells.len().div_ceil(shard_cells);
    let threads = resolve_threads(opts.threads);
    // Probes advance the operation clock when every remaining shard is
    // held by someone else; after this many fruitless sweeps even the
    // longest-ttl lease must have lapsed, so no progress then means the
    // queue is genuinely wedged (e.g. a fault injector killed the world).
    let probe_budget = opts.ttl.max(1) * (n_shards as u64 + 1) + 64;
    let mut probes = 0u64;

    loop {
        let state = read_journal(&journal_path).unwrap_or_default();
        if state.finished && store.read_manifest(digest).is_ok() {
            reclaim_all_leases(store, digest)?;
            attribute_result_plane(store, digest, &opts.worker, &tallies, metrics);
            return Ok(());
        }
        let mut progress = false;

        for shard in 0..n_shards {
            let lo = shard * shard_cells;
            let hi = (lo + shard_cells).min(cells.len());
            let state = read_journal(&journal_path).unwrap_or_default();
            let pending: Vec<&Cell> = cells[lo..hi]
                .iter()
                .filter(|c| !terminal(store, digest, c, &state.poisoned))
                .collect();
            if pending.is_empty() {
                continue;
            }
            let journal_len = state.entries.len() as u64;
            let path = lease_path(store, digest, shard as u64);
            let claimable = match std::fs::read_to_string(&path) {
                Err(_) => true, // no lease (or unreadable debris)
                Ok(text) => match Lease::parse(&text) {
                    Err(_) => true,                           // torn — reclaim
                    Ok(l) if l.worker == opts.worker => true, // already ours
                    Ok(l) => {
                        // Steal only lapsed claims; the takeover of a
                        // dead worker's lease is a seam worth tracing
                        // (op-indexed on the journal's operation clock).
                        let lapsed = l.expired(journal_len);
                        if lapsed {
                            obs.emit(
                                "farm",
                                "expire",
                                journal_len,
                                &l.worker,
                                &[("shard", shard as u64)],
                            );
                        }
                        lapsed
                    }
                },
            };
            if !claimable {
                continue;
            }
            let lease = Lease {
                suite: digest.to_string(),
                shard: shard as u64,
                start: lo as u64,
                count: (hi - lo) as u64,
                worker: opts.worker.clone(),
                issued_at: journal_len,
                ttl: opts.ttl,
            };
            let ldir = lease_dir(store, digest);
            std::fs::create_dir_all(&ldir).map_err(|e| format!("{}: {e}", ldir.display()))?;
            store
                .write_text(&path, &lease.render_pretty())
                .map_err(|e| format!("lease write failed: {e}"))?;
            obs.emit(
                "farm",
                "lease",
                journal_len,
                &opts.worker,
                &[
                    ("shard", shard as u64),
                    ("start", lo as u64),
                    ("count", (hi - lo) as u64),
                ],
            );

            // Write-ahead: claim every pending cell of the shard, then
            // run them with the shared thread fan-out, then commit.
            for cell in &pending {
                journal
                    .append(&JournalEntry::Claimed {
                        index: cell.index as u64,
                        cell: cell.digest.clone(),
                    })
                    .map_err(jerr)?;
            }
            let outcomes = run_trials_threaded(&pending, threads.min(pending.len()), |cell| {
                run_one(store.faults(), opts.exec, opts.engine, obs, cell)
            });
            for (cell, (outcome, stats)) in pending.iter().zip(&outcomes) {
                commit_cell(store, digest, &journal, cell, outcome, &opts.worker, report)?;
                report.executed += 1;
                // Raw work including duplicate executions of stolen
                // cells; the result plane is attributed at drain end.
                metrics.add("farm.executions", 1);
                tallies.insert(
                    cell.index as u64,
                    CellTally {
                        ok: outcome.ok(),
                        status: outcome.status(),
                        ticks: outcome.record().map(|r| r.report.ticks()),
                        stats: *stats,
                    },
                );
            }
            let _ = std::fs::remove_file(&path); // release our claim
            progress = true;
        }

        let state = read_journal(&journal_path).unwrap_or_default();
        let all_terminal = cells
            .iter()
            .all(|c| terminal(store, digest, c, &state.poisoned));
        if all_terminal {
            if !state.finished || store.read_manifest(digest).is_err() {
                finalize(store, digest, suite, &cells, &journal)?;
                report.finalized.push(digest.to_string());
            }
            reclaim_all_leases(store, digest)?;
            attribute_result_plane(store, digest, &opts.worker, &tallies, metrics);
            return Ok(());
        }
        if !progress {
            // Someone else holds every remaining shard. Advance the
            // operation clock so a dead holder's lease lapses.
            probes += 1;
            if probes > probe_budget {
                return Err(format!(
                    "suite {digest}: no progress after {probes} probes — \
                     remaining shards are leased but never complete"
                ));
            }
            // `terminal` reads the store, so a concurrent worker may have
            // committed the remaining cells since the `all_terminal` pass
            // above; an empty scan just means the next loop will finalize.
            let Some(first_pending) = cells
                .iter()
                .find(|c| !terminal(store, digest, c, &state.poisoned))
            else {
                continue;
            };
            journal
                .append(&JournalEntry::Claimed {
                    index: first_pending.index as u64,
                    cell: first_pending.digest.clone(),
                })
                .map_err(jerr)?;
            obs.emit(
                "farm",
                "probe",
                state.entries.len() as u64,
                &opts.worker,
                &[("probes", probes)],
            );
            // Bounded, probe-indexed politeness pause (real concurrent
            // workers spin less hot; in-process fault tests, which use
            // tiny ttls, barely wait).
            std::thread::sleep(std::time::Duration::from_millis(probes.min(10)));
        }
    }
}

/// Run one cell (honoring an installed fault injector's panic plan and
/// the worker's execution-engine override).
fn run_one(
    faults: Option<&std::sync::Arc<FaultInjector>>,
    exec: Option<ExecMode>,
    engine: Option<apex_scenario::ProgramEngine>,
    obs: &Obs,
    cell: &Cell,
) -> (RunOutcome, ExecStats) {
    if faults.is_some_and(|f| f.panics_cell(cell.index)) {
        let outcome = RunOutcome::capture_with(&cell.scenario, |_| {
            panic!("{CELL_PANIC_MARKER} in cell {}", cell.index)
        });
        (outcome, ExecStats::default())
    } else {
        RunOutcome::capture_engines_obs(&cell.scenario, exec, engine, obs)
    }
}

/// Durably record one outcome: write the record (unless verified
/// identical bytes are already there) and append the journal entry.
/// A byte disagreement with an existing verified record becomes a
/// [`Divergence`]; the stored bytes stay ground truth.
fn commit_cell(
    store: &LabStore,
    digest: &str,
    journal: &Journal,
    cell: &Cell,
    outcome: &RunOutcome,
    worker: &str,
    report: &mut WorkerReport,
) -> Result<(), String> {
    let jerr = |e: std::io::Error| format!("journal append failed: {e}");
    match outcome.record() {
        Some(record) => {
            let fresh = record.render_pretty();
            match store.lookup_record(digest, &cell.digest, None) {
                CacheLookup::Hit(stored, _) if stored != fresh => {
                    let paths = match (Json::parse(&stored), Json::parse(&fresh)) {
                        (Ok(a), Ok(b)) => json_diff(&a, &b, 8),
                        _ => vec!["(stored bytes are not JSON)".to_string()],
                    };
                    report.divergences.push(Divergence {
                        suite: digest.to_string(),
                        cell: cell.digest.clone(),
                        paths,
                    });
                }
                CacheLookup::Hit(..) => {} // identical bytes already durable
                _ => {
                    store
                        .write_record(digest, record)
                        .map_err(|e| format!("record write failed: {e}"))?;
                }
            }
            journal
                .append(&JournalEntry::Committed {
                    index: cell.index as u64,
                    cell: cell.digest.clone(),
                    ok: outcome.ok(),
                    by: worker.to_string(),
                })
                .map_err(jerr)
        }
        None => journal
            .append(&JournalEntry::Poisoned {
                index: cell.index as u64,
                cell: cell.digest.clone(),
                status: outcome.status().to_string(),
                by: worker.to_string(),
                message: match outcome {
                    RunOutcome::Exhausted { message, .. }
                    | RunOutcome::Poisoned { message, .. } => message.clone(),
                    RunOutcome::Complete(_) => unreachable!("record() is None"),
                },
            })
            .map_err(jerr),
    }
}

/// Merge + finalize: reconstruct every cell's outcome from verified
/// records (or journal `poisoned` entries), run the suite's pinned
/// output checks through the runner's own assembly path, and write the
/// manifest — byte-identical to what a single `apex suite run` writes.
fn finalize(
    store: &LabStore,
    digest: &str,
    suite: &Suite,
    cells: &[Cell],
    journal: &Journal,
) -> Result<(), String> {
    let state = read_journal(&store.journal_path(digest)).unwrap_or_default();
    let mut outcomes = Vec::with_capacity(cells.len());
    for cell in cells {
        match store.lookup_record(digest, &cell.digest, None) {
            CacheLookup::Hit(_, record) => outcomes.push(RunOutcome::Complete(record)),
            _ => {
                let (status, message) = state
                    .entries
                    .iter()
                    .rev()
                    .find_map(|e| match e {
                        JournalEntry::Poisoned {
                            index,
                            status,
                            message,
                            ..
                        } if *index == cell.index as u64 => Some((status.clone(), message.clone())),
                        _ => None,
                    })
                    .ok_or_else(|| {
                        format!("cell {} of suite {digest} is not terminal", cell.index)
                    })?;
                outcomes.push(if status == "exhausted" {
                    RunOutcome::Exhausted {
                        scenario: cell.scenario.clone(),
                        message,
                    }
                } else {
                    RunOutcome::Poisoned {
                        scenario: cell.scenario.clone(),
                        message,
                    }
                });
            }
        }
    }
    let run = assemble_run(suite, cells, outcomes);
    let manifest = Manifest::from_run(&run);
    store
        .write_manifest(&manifest)
        .map_err(|e| format!("manifest write failed: {e}"))?;
    journal
        .append(&JournalEntry::Finished {
            ok: run.all_ok(),
            seq: next_finish_seq(store),
        })
        .map_err(|e| format!("journal append failed: {e}"))?;
    Ok(())
}

/// Delete every lease file of a finalized suite and the `leases/`
/// directory itself — a converged store carries no queue debris.
fn reclaim_all_leases(store: &LabStore, digest: &str) -> Result<(), String> {
    for (path, _) in read_leases(store, digest)? {
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_dir(lease_dir(store, digest));
    Ok(())
}
