//! The query front-end (`apex farm query`): answer one scenario from
//! the store, or enqueue it for the workers.
//!
//! A query is a scenario document; its content digest is the cache key.
//! If *any* suite in the store holds a verified record for that digest
//! (the scan trusts only bytes that parse, digest-verify, and sit at
//! their own address — the same bar as `--cached`), the stored record
//! is the answer, byte-for-byte. Otherwise the scenario is wrapped in a
//! one-cell suite named `query-<digest>` and submitted to the queue;
//! once a worker drains it, re-issuing the same query is a hit.

use apex_lab::{LabStore, Suite};
use apex_scenario::{ReportRecord, Scenario};

use crate::queue::FarmQueue;

/// The two ways a query resolves.
#[derive(Clone, Debug)]
pub enum QueryAnswer {
    /// A verified record already in the store answers the query.
    Hit {
        /// Digest of the suite the record was found under.
        suite: String,
        /// The record's exact stored bytes.
        text: String,
        /// The parsed record.
        record: Box<ReportRecord>,
    },
    /// No verified record exists; a one-cell suite was (idempotently)
    /// enqueued for the workers.
    Enqueued {
        /// Digest of the enqueued one-cell suite.
        suite_digest: String,
        /// Queue file path.
        path: std::path::PathBuf,
        /// False when an identical entry was already queued.
        fresh: bool,
    },
}

/// Answer `scenario` from `store`, or enqueue it on `queue`.
pub fn query(
    store: &LabStore,
    queue: &FarmQueue,
    scenario: &Scenario,
) -> Result<QueryAnswer, String> {
    scenario.validate().map_err(|e| e.to_string())?;
    let digest = scenario.digest();
    if let Some((suite, text, record)) = store.find_record(&digest) {
        return Ok(QueryAnswer::Hit {
            suite,
            text,
            record,
        });
    }
    let mut suite = Suite::new(format!("query-{digest}"));
    suite.cells.push(scenario.clone());
    let (suite_digest, path, fresh) = queue.submit(&suite)?;
    Ok(QueryAnswer::Enqueued {
        suite_digest,
        path,
        fresh,
    })
}
