//! The file-based dispatch queue (`apex farm submit` / `apex farm status`).
//!
//! A queue is a directory of suite documents, one file per suite, named
//! by the suite's content digest (`<suite-digest>.json`). Submission is
//! therefore idempotent — submitting the same suite twice writes the
//! same file with the same bytes — and the queue needs no locking: it
//! is append-only in the same sense the store is, and workers treat a
//! fully-cached entry as already drained. Entries are never dequeued;
//! a drained entry is simply one whose suite has a finished manifest in
//! the store, which `apex farm status` reports.

use std::path::{Path, PathBuf};

use apex_lab::{read_journal, read_leases, LabStore, Suite};

/// Default queue root, relative to the working directory (a sibling of
/// the lab store's `.apex/lab`).
pub const DEFAULT_QUEUE_ROOT: &str = ".apex/farm";

/// A directory of enqueued suite documents.
#[derive(Clone, Debug)]
pub struct FarmQueue {
    root: PathBuf,
}

impl FarmQueue {
    /// A queue rooted at `root` (created lazily on first submit).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        FarmQueue { root: root.into() }
    }

    /// The queue at the default location, [`DEFAULT_QUEUE_ROOT`].
    pub fn default_location() -> Self {
        Self::new(DEFAULT_QUEUE_ROOT)
    }

    /// The queue's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The queue file path for a suite digest.
    pub fn entry_path(&self, suite_digest: &str) -> PathBuf {
        self.root.join(format!("{suite_digest}.json"))
    }

    /// Enqueue a suite: validate, then write its canonical document at
    /// its content address. Returns `(digest, path, fresh)`; `fresh` is
    /// false when an identical entry was already queued (idempotent).
    pub fn submit(&self, suite: &Suite) -> Result<(String, PathBuf, bool), String> {
        suite.validate()?;
        let digest = suite.digest();
        let path = self.entry_path(&digest);
        let text = suite.render_pretty();
        if let Ok(existing) = std::fs::read_to_string(&path) {
            if existing == text {
                return Ok((digest, path, false));
            }
        }
        std::fs::create_dir_all(&self.root).map_err(|e| format!("{}: {e}", self.root.display()))?;
        apex_scenario::atomic_write(&path, &text)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ok((digest, path, true))
    }

    /// Every queued suite, sorted by digest (deterministic worker scan
    /// order). Each entry is re-validated: its digest must match its
    /// file name, so a corrupted queue file is an error, not a silently
    /// different workload.
    pub fn entries(&self) -> Result<Vec<(String, Suite)>, String> {
        if !self.root.exists() {
            return Ok(Vec::new());
        }
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&self.root)
            .map_err(|e| format!("{}: {e}", self.root.display()))?
            .map(|e| e.map(|e| e.path()))
            .collect::<Result<_, _>>()
            .map_err(|e| format!("{}: {e}", self.root.display()))?;
        paths.sort();
        let mut out = Vec::new();
        for path in paths {
            if path.is_dir() || path.extension().is_none_or(|e| e != "json") {
                continue;
            }
            let suite = Suite::load(&path)?;
            let digest = suite.digest();
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            if stem != digest {
                return Err(format!(
                    "{}: queue entry digests to {digest}, not its file name",
                    path.display()
                ));
            }
            out.push((digest, suite));
        }
        Ok(out)
    }

    /// Survey every queue entry against `store` (what `apex farm
    /// status` prints).
    pub fn status(&self, store: &LabStore) -> Result<FarmStatus, String> {
        let mut out = FarmStatus::default();
        for (digest, suite) in self.entries()? {
            let cells = suite.expand()?;
            let journal = read_journal(&store.journal_path(&digest)).ok();
            let poisoned: std::collections::BTreeSet<u64> = journal
                .as_ref()
                .map(|s| s.poisoned.iter().copied().collect())
                .unwrap_or_default();
            let records = cells
                .iter()
                .filter(|c| {
                    matches!(
                        store.lookup_record(&digest, &c.digest, None),
                        apex_lab::CacheLookup::Hit(..)
                    )
                })
                .count();
            let finished = journal.as_ref().is_some_and(|s| s.finished)
                && store.read_manifest(&digest).is_ok();
            let leases = read_leases(store, &digest)?.len();
            out.suites.push(SuiteProgress {
                digest,
                name: suite.name.clone(),
                cells: cells.len(),
                records,
                poisoned: poisoned.len(),
                leases,
                finished,
            });
        }
        Ok(out)
    }
}

/// Progress of one queued suite against a store.
#[derive(Clone, Debug)]
pub struct SuiteProgress {
    /// Suite digest.
    pub digest: String,
    /// Suite name.
    pub name: String,
    /// Cells in the expansion.
    pub cells: usize,
    /// Cells with a verified record in the store.
    pub records: usize,
    /// Cells whose journal says they poisoned/exhausted (no record).
    pub poisoned: usize,
    /// Live lease files currently present.
    pub leases: usize,
    /// Whether the journal has a `finished` entry and the manifest is
    /// readable.
    pub finished: bool,
}

impl SuiteProgress {
    /// Every cell reached a terminal state.
    pub fn done(&self) -> bool {
        self.records + self.poisoned >= self.cells
    }
}

/// What `apex farm status` prints: one row per queue entry.
#[derive(Clone, Debug, Default)]
pub struct FarmStatus {
    /// Per-suite progress, in queue (digest) order.
    pub suites: Vec<SuiteProgress>,
}

impl FarmStatus {
    /// Whether every queued suite is finalized.
    pub fn all_finished(&self) -> bool {
        self.suites.iter().all(|s| s.finished)
    }

    /// Deterministic multi-line summary.
    pub fn summary(&self) -> String {
        if self.suites.is_empty() {
            return "farm: queue is empty".to_string();
        }
        let mut out = format!(
            "farm: {} queued suites, {} finished",
            self.suites.len(),
            self.suites.iter().filter(|s| s.finished).count()
        );
        for s in &self.suites {
            let state = if s.finished {
                "finished".to_string()
            } else if s.leases > 0 {
                format!("in-flight ({} leases)", s.leases)
            } else if s.records + s.poisoned > 0 {
                "in-flight".to_string()
            } else {
                "queued".to_string()
            };
            out.push_str(&format!(
                "\n  {} {}: {}/{} cells ({} records, {} poisoned) — {state}",
                s.digest,
                s.name,
                s.records + s.poisoned,
                s.cells,
                s.records,
                s.poisoned
            ));
        }
        out
    }
}
