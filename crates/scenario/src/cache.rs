//! [`CacheStats`] — the typed tally of a memoized (cached) run.
//!
//! The lab store is content-addressed and every record deterministic, so
//! a second request for the same cell digest should never recompute.
//! When a runner consults the store before executing (the `--cached`
//! path, or a farm worker draining a queue), every cell lands in exactly
//! one of three buckets: **hit** (verified bytes already present —
//! nothing executed), **miss** (no bytes at the cell's address), or
//! **rejected** (bytes present but they failed verification: parse,
//! digest, canonical rendering, or pinned checksum — the cache never
//! trusts unverified bytes). The tally is serializable like everything
//! else here, so it lands both in the run summary and in a
//! `cache-stats.json` sidecar next to the manifest.

use apex_sim::{Json, JsonError};

use crate::record::atomic_write;

/// Major version of the cache-stats JSON format (mismatches are
/// rejected).
pub const CACHE_FORMAT_MAJOR: u64 = 1;
/// Minor version of the cache-stats JSON format (additive extensions
/// only).
pub const CACHE_FORMAT_MINOR: u64 = 0;

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// Per-run memoization tally: every cell the runner looked up lands in
/// exactly one bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells answered from verified store bytes (not executed).
    pub hits: u64,
    /// Cells with no bytes at their content address (executed).
    pub misses: u64,
    /// Cells whose stored bytes failed verification — parse, digest,
    /// canonical-rendering, or checksum — and were therefore re-executed
    /// rather than trusted.
    pub rejected: u64,
}

impl CacheStats {
    /// Total cells looked up.
    pub fn total(&self) -> u64 {
        self.hits + self.misses + self.rejected
    }

    /// Whether every looked-up cell was a verified hit (the memoization
    /// proof: a warm re-run executes nothing).
    pub fn all_hit(&self) -> bool {
        self.total() > 0 && self.misses == 0 && self.rejected == 0
    }

    /// Fold another tally into this one (farm workers merge per-shard
    /// tallies).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.rejected += other.rejected;
    }

    /// One-line human summary (what `apex suite run --cached` prints).
    pub fn summary(&self) -> String {
        format!(
            "cache: {} hits, {} misses, {} rejected",
            self.hits, self.misses, self.rejected
        )
    }

    /// Serialize to the versioned cache-stats document (canonical field
    /// order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "version".into(),
                Json::Obj(vec![
                    ("major".into(), Json::UInt(CACHE_FORMAT_MAJOR)),
                    ("minor".into(), Json::UInt(CACHE_FORMAT_MINOR)),
                ]),
            ),
            ("hits".into(), Json::UInt(self.hits)),
            ("misses".into(), Json::UInt(self.misses)),
            ("rejected".into(), Json::UInt(self.rejected)),
        ])
    }

    /// Deserialize (rejects unknown major versions).
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = v
            .get("version")
            .map_err(|_| jerr("cache-stats document has no version field"))?;
        let major = version.get("major")?.as_u64()?;
        if major != CACHE_FORMAT_MAJOR {
            return Err(jerr(format!(
                "unsupported cache-stats format major version {major} (this build reads \
                 {CACHE_FORMAT_MAJOR})"
            )));
        }
        Ok(CacheStats {
            hits: v.get("hits")?.as_u64()?,
            misses: v.get("misses")?.as_u64()?,
            rejected: v.get("rejected")?.as_u64()?,
        })
    }

    /// Parse a complete cache-stats document.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// The canonical pretty-printed document.
    pub fn render_pretty(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Write the canonical document to `path` atomically
    /// (temp + fsync + rename).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        atomic_write(path, &self.render_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_round_trip_byte_identically() {
        for stats in [
            CacheStats::default(),
            CacheStats {
                hits: 13,
                misses: 2,
                rejected: 1,
            },
        ] {
            let text = stats.render_pretty();
            let back = CacheStats::parse(&text).unwrap();
            assert_eq!(back, stats);
            assert_eq!(back.render_pretty(), text);
        }
    }

    #[test]
    fn buckets_tally_and_classify() {
        let mut a = CacheStats {
            hits: 3,
            misses: 0,
            rejected: 0,
        };
        assert!(a.all_hit());
        assert_eq!(a.total(), 3);
        a.absorb(&CacheStats {
            hits: 1,
            misses: 2,
            rejected: 1,
        });
        assert_eq!(a.total(), 7);
        assert!(!a.all_hit());
        assert!(
            !CacheStats::default().all_hit(),
            "an empty tally proves nothing"
        );
        assert!(a.summary().contains("4 hits"));
    }

    #[test]
    fn unknown_major_version_is_rejected() {
        let mut json = CacheStats::default().to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Obj(vec![
                ("major".into(), Json::UInt(CACHE_FORMAT_MAJOR + 1)),
                ("minor".into(), Json::UInt(0)),
            ]);
        }
        assert!(CacheStats::from_json(&json)
            .unwrap_err()
            .msg
            .contains("major version"));
    }
}
