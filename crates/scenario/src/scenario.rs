//! The [`Scenario`] type: one declarative, serializable run description.

use std::path::Path;
use std::rc::Rc;

use apex_core::{
    AgreementConfig, AgreementRun, CoinSource, InstrumentOpts, KeyedSource, RandomSource,
    ValueSource,
};
use apex_exec::{ExecMode, ExecStats, KernelSpec};
use apex_obs::Obs;
use apex_pram::{Program, VarBlock};
use apex_scheme::tasks::eval_cost;
use apex_scheme::{ReplicaK, SchemeKind, SchemeRun, SchemeRunConfig};
use apex_sim::{AdversarySpec, Json, JsonError, ScheduleKind};

use crate::program::{scheme_from_label, ProgramSource};
use crate::report::{AgreementRunReport, ScenarioReport};

/// Major version of the scenario JSON format. Readers reject documents
/// whose `version.major` differs; `version.minor` only marks additive,
/// ignorable extensions.
pub const FORMAT_MAJOR: u64 = 1;
/// Minor version of the scenario JSON format (see [`FORMAT_MAJOR`]).
///
/// Deliberately *not* bumped for the adversary algebra: digests are FNV
/// over the canonical document, so changing the version stanza would
/// re-address every store record and corpus artifact. The version is a
/// compatibility gate (readers reject major mismatches), not a
/// changelog; a pre-algebra reader meeting a combinator schedule fails
/// with a clear "unknown schedule kind" parse error.
pub const FORMAT_MINOR: u64 = 0;

/// Why a scenario is ill-formed (from [`Scenario::validate`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioError(pub String);

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ScenarioError {}

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// Thread-safe, serializable recipe for a [`ValueSource`] (the sources
/// themselves are `Rc`-shared and must be constructed on the running
/// thread).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceSpec {
    /// `RandomSource::new(bound)`.
    Random(u64),
    /// `CoinSource::new(num, den)`.
    Coin(u64, u64),
    /// `KeyedSource` (deterministic per (phase, bin)).
    Keyed,
}

impl SourceSpec {
    /// Check the recipe's parameters satisfy the sources' own
    /// preconditions (what [`SourceSpec::build`] would otherwise assert).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        match *self {
            SourceSpec::Random(0) => Err(ScenarioError("random source bound must be ≥ 1".into())),
            SourceSpec::Coin(num, den) if den == 0 || num > den => Err(ScenarioError(format!(
                "coin source needs num ≤ den and den ≥ 1, got {num}/{den}"
            ))),
            _ => Ok(()),
        }
    }

    /// Instantiate on the current thread.
    pub fn build(&self) -> Rc<dyn ValueSource> {
        match *self {
            SourceSpec::Random(bound) => Rc::new(RandomSource::new(bound)),
            SourceSpec::Coin(num, den) => Rc::new(CoinSource::new(num, den)),
            SourceSpec::Keyed => Rc::new(KeyedSource),
        }
    }

    fn to_json(&self) -> Json {
        match self {
            SourceSpec::Random(bound) => Json::Obj(vec![
                ("kind".into(), Json::Str("random".into())),
                ("bound".into(), Json::UInt(*bound)),
            ]),
            SourceSpec::Coin(num, den) => Json::Obj(vec![
                ("kind".into(), Json::Str("coin".into())),
                ("num".into(), Json::UInt(*num)),
                ("den".into(), Json::UInt(*den)),
            ]),
            SourceSpec::Keyed => Json::Obj(vec![("kind".into(), Json::Str("keyed".into()))]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.get("kind")?.as_str()? {
            "random" => Ok(SourceSpec::Random(v.get("bound")?.as_u64()?)),
            "coin" => Ok(SourceSpec::Coin(
                v.get("num")?.as_u64()?,
                v.get("den")?.as_u64()?,
            )),
            "keyed" => Ok(SourceSpec::Keyed),
            other => Err(jerr(format!("unknown source kind {other:?}"))),
        }
    }
}

/// Interpreter engine for scheme-mode program execution.
///
/// Both engines perform the identical sequence of atomic operations and
/// RNG draws per processor per tick, so schedules, work accounting, memory
/// stamps, and reports are byte-for-byte the same — this is a pure
/// throughput choice, like [`ExecMode`] for kernel scenarios.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProgramEngine {
    /// The tree-walking scheme processors (`apex-scheme`): the reference
    /// semantics and the oracle the bytecode engine is diffed against.
    #[default]
    Tree,
    /// The flat bytecode compiler + VM (`apex-bc`): the program is lowered
    /// once at assembly time into a contiguous slot table with
    /// pre-resolved addresses and stamps, then executed by a flat VM.
    Bytecode,
}

impl ProgramEngine {
    /// Stable lower-case label (serialization, report rows, CLI values).
    pub fn label(self) -> &'static str {
        match self {
            ProgramEngine::Tree => "tree",
            ProgramEngine::Bytecode => "bytecode",
        }
    }

    /// Parse a [`ProgramEngine::label`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tree" => Some(ProgramEngine::Tree),
            "bytecode" => Some(ProgramEngine::Bytecode),
            _ => None,
        }
    }

    fn to_json(self) -> Json {
        Json::Str(self.label().into())
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s = v.as_str()?;
        Self::parse(s).ok_or_else(|| jerr(format!("unknown program engine {s:?}")))
    }
}

impl std::fmt::Display for ProgramEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Engine knobs: how the machine executes, never what it computes
/// (batching is tick-transparent; the tick budget only moves the
/// stall-detection bar).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineKnobs {
    /// Scheduler prefetch batch size (`None` keeps the machine default).
    pub batch: Option<usize>,
    /// Per-subphase (scheme mode) / per-phase (agreement mode) stall
    /// budget in work units (`None` derives a generous default).
    pub tick_budget: Option<u64>,
    /// Execution engine for kernel-mode scenarios (serial reference or
    /// ticketed parallel; see [`ExecMode`]). Scheme and agreement modes
    /// always run on the serial engine and ignore this knob. Reports are
    /// byte-identical across modes, so this is a pure engine choice.
    pub exec: ExecMode,
    /// Interpreter engine for scheme-mode scenarios (tree walker or
    /// bytecode VM; see [`ProgramEngine`]). Agreement and kernel modes
    /// ignore this knob. Reports are byte-identical across engines.
    pub program_engine: ProgramEngine,
}

impl EngineKnobs {
    fn to_json(self) -> Json {
        let opt = |v: Option<u64>| v.map_or(Json::Null, Json::UInt);
        let mut fields = vec![
            ("batch".into(), opt(self.batch.map(|b| b as u64))),
            ("tick_budget".into(), opt(self.tick_budget)),
        ];
        // Omitted when Serial so every pre-existing document — and with it
        // every content digest in every store — is byte-for-byte unchanged.
        if self.exec != ExecMode::Serial {
            fields.push(("exec".into(), self.exec.to_json()));
        }
        // Same digest-preservation rule: omitted at the Tree default.
        if self.program_engine != ProgramEngine::Tree {
            fields.push(("program_engine".into(), self.program_engine.to_json()));
        }
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let opt = |v: Option<&Json>| -> Result<Option<u64>, JsonError> {
            match v {
                None | Some(Json::Null) => Ok(None),
                Some(x) => x.as_u64().map(Some),
            }
        };
        Ok(EngineKnobs {
            batch: opt(v.get_opt("batch"))?
                .map(|b| {
                    usize::try_from(b).map_err(|_| jerr(format!("batch {b} does not fit usize")))
                })
                .transpose()?,
            tick_budget: opt(v.get_opt("tick_budget"))?,
            exec: match v.get_opt("exec") {
                None | Some(Json::Null) => ExecMode::Serial,
                Some(e) => ExecMode::from_json(e)?,
            },
            program_engine: match v.get_opt("program_engine") {
                None | Some(Json::Null) => ProgramEngine::Tree,
                Some(e) => ProgramEngine::from_json(e)?,
            },
        })
    }
}

/// What a scenario runs: a PRAM program through an execution scheme, or
/// the raw bin-array agreement protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Mode {
    /// Execute a synchronous PRAM program through an execution scheme and
    /// verify it against the ideal replay.
    Scheme {
        /// Execution scheme.
        scheme: SchemeKind,
        /// Workload.
        program: ProgramSource,
        /// Variable replication factor K.
        replicas: ReplicaK,
    },
    /// Run `phases` phases of the agreement protocol itself, with the
    /// Theorem-1 validators watching.
    Agreement {
        /// Participants / values per phase.
        n: usize,
        /// Value-source recipe.
        source: SourceSpec,
        /// Phases to run.
        phases: usize,
        /// Instrumentation switches.
        instrument: InstrumentOpts,
    },
    /// Drive a stress-kernel workload ([`KernelSpec`]) for a fixed number
    /// of schedule ticks — the workload family the ticketed parallel
    /// engine ([`ExecMode::Ticketed`]) can execute on multiple threads
    /// with a byte-identical report.
    Kernel {
        /// The kernel family and its parameters.
        kernel: KernelSpec,
        /// Number of processors.
        n: usize,
        /// Schedule ticks to execute.
        ticks: u64,
    },
}

/// One fully-described run: everything the paper's claim is parameterized
/// over — workload, scheme, oblivious adversary, seed, constants — in one
/// declarative, JSON-serializable value.
///
/// A `Scenario` is the workspace's single entry point: benchmarks, the
/// fuzzer's reproducers, the examples, and hand-written experiments all
/// name their runs this way, so any run anyone constructs is a shareable
/// JSON file that reproduces bit-for-bit (`apex-synth run scenario.json`).
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// What runs.
    pub mode: Mode,
    /// The oblivious adversary: any tree of the composable adversary
    /// algebra (legacy [`ScheduleKind`]s are the [`AdversarySpec::Base`]
    /// leaves and serialize to the same bytes they always did).
    pub schedule: AdversarySpec,
    /// Master seed (private random sources + schedule streams).
    pub seed: u64,
    /// Override the protocol constants (`None` derives them from the mode).
    pub agreement: Option<AgreementConfig>,
    /// Engine knobs.
    pub engine: EngineKnobs,
}

impl Scenario {
    /// A scheme-mode scenario with the harness defaults (uniform
    /// adversary, K = 2, derived constants).
    pub fn scheme(scheme: SchemeKind, program: ProgramSource, seed: u64) -> Self {
        Scenario {
            mode: Mode::Scheme {
                scheme,
                program,
                replicas: ReplicaK::default(),
            },
            schedule: AdversarySpec::Base(ScheduleKind::Uniform),
            seed,
            agreement: None,
            engine: EngineKnobs::default(),
        }
    }

    /// An agreement-mode scenario with the harness defaults.
    pub fn agreement(n: usize, source: SourceSpec, phases: usize, seed: u64) -> Self {
        Scenario {
            mode: Mode::Agreement {
                n,
                source,
                phases,
                instrument: InstrumentOpts::default(),
            },
            schedule: AdversarySpec::Base(ScheduleKind::Uniform),
            seed,
            agreement: None,
            engine: EngineKnobs::default(),
        }
    }

    /// A kernel-mode scenario with the harness defaults (uniform
    /// adversary, serial engine).
    pub fn kernel(kernel: KernelSpec, n: usize, ticks: u64, seed: u64) -> Self {
        Scenario {
            mode: Mode::Kernel { kernel, n, ticks },
            schedule: AdversarySpec::Base(ScheduleKind::Uniform),
            seed,
            agreement: None,
            engine: EngineKnobs::default(),
        }
    }

    /// Set the adversary (accepts a legacy [`ScheduleKind`] or any
    /// [`AdversarySpec`] composition).
    pub fn schedule(mut self, s: impl Into<AdversarySpec>) -> Self {
        self.schedule = s.into();
        self
    }

    /// Set the replication factor (scheme mode only; no-op otherwise).
    pub fn replicas(mut self, k: usize) -> Self {
        if let Mode::Scheme { replicas, .. } = &mut self.mode {
            *replicas = ReplicaK(k);
        }
        self
    }

    /// Set the instrumentation switches (agreement mode only; no-op
    /// otherwise).
    pub fn instrument(mut self, opts: InstrumentOpts) -> Self {
        if let Mode::Agreement { instrument, .. } = &mut self.mode {
            *instrument = opts;
        }
        self
    }

    /// Override the protocol constants.
    pub fn agreement_config(mut self, cfg: AgreementConfig) -> Self {
        self.agreement = Some(cfg);
        self
    }

    /// Set the engine batch size.
    pub fn batch(mut self, batch: usize) -> Self {
        self.engine.batch = Some(batch);
        self
    }

    /// Set the stall budget.
    pub fn tick_budget(mut self, budget: u64) -> Self {
        self.engine.tick_budget = Some(budget);
        self
    }

    /// Set the execution engine (kernel mode; other modes carry the knob
    /// but always run serially).
    pub fn exec(mut self, exec: ExecMode) -> Self {
        self.engine.exec = exec;
        self
    }

    /// Set the interpreter engine (scheme mode; other modes carry the
    /// knob but ignore it).
    pub fn program_engine(mut self, engine: ProgramEngine) -> Self {
        self.engine.program_engine = engine;
        self
    }

    /// Processor count of the described machine.
    pub fn n(&self) -> usize {
        match &self.mode {
            Mode::Scheme { program, .. } => program.n_threads(),
            Mode::Agreement { n, .. } => *n,
            Mode::Kernel { n, .. } => *n,
        }
    }

    /// Content digest of the canonical compact scenario document: 16 hex
    /// digits of FNV-1a over [`Scenario::to_json`]`.render()`. Two
    /// scenarios share a digest iff they serialize identically, so the
    /// digest is the scenario's *content address* — the lab store keys
    /// every [`ReportRecord`](crate::ReportRecord) by it, and corpus dedup
    /// treats a collision as a duplicate reproducer.
    pub fn digest(&self) -> String {
        format!("{:016x}", fnv1a64(self.to_json().render().as_bytes()))
    }

    /// The named input/output [`VarBlock`]s of a scheme-mode scenario
    /// whose program source declares them (library entries do; explicit
    /// programs and agreement-mode scenarios return `None`).
    pub fn io_blocks(&self) -> Option<(VarBlock, VarBlock)> {
        match &self.mode {
            Mode::Scheme { program, .. } => program.resolve_io().ok().flatten(),
            Mode::Agreement { .. } | Mode::Kernel { .. } => None,
        }
    }

    /// Check the scenario names a well-formed point of the run space —
    /// resolvable program, in-range schedule and source parameters,
    /// compatible constants — *before* any machine is assembled.
    /// [`Scenario::run`] calls this and panics on failure; untrusted
    /// inputs (files, CLI) should validate first and surface the error.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.validate_resolving().map(|_| ())
    }

    /// [`Scenario::validate`], returning the resolved program of a
    /// scheme-mode scenario so `build_scheme` resolves exactly once.
    fn validate_resolving(&self) -> Result<Option<Program>, ScenarioError> {
        let fail = |msg: String| Err(ScenarioError(msg));
        if self.engine.batch == Some(0) {
            return fail("engine batch must be ≥ 1".into());
        }
        self.engine.exec.validate().map_err(ScenarioError)?;
        let resolved = match &self.mode {
            Mode::Scheme {
                program, replicas, ..
            } => {
                if replicas.0 < 1 {
                    return fail("replica factor K must be ≥ 1".into());
                }
                let p = program.resolve()?;
                if p.n_steps() < 1 {
                    return fail(format!("program {:?} has no steps", p.name));
                }
                if p.n_threads < 2 {
                    return fail(format!(
                        "program {:?} has {} threads; the agreement layout needs ≥ 2",
                        p.name, p.n_threads
                    ));
                }
                if let Some(cfg) = &self.agreement {
                    if cfg.n != p.n_threads {
                        return fail(format!(
                            "agreement constants sized for n={}, program has {} threads",
                            cfg.n, p.n_threads
                        ));
                    }
                    if cfg.eval_cost < eval_cost(replicas.0) {
                        return fail(format!(
                            "eval budget {} too small for K={} (needs ≥ {})",
                            cfg.eval_cost,
                            replicas.0,
                            eval_cost(replicas.0)
                        ));
                    }
                }
                Some(p)
            }
            Mode::Agreement {
                n, source, phases, ..
            } => {
                if *n < 2 {
                    return fail(format!("agreement needs ≥ 2 participants, got {n}"));
                }
                if *phases < 1 {
                    return fail("agreement scenario must run ≥ 1 phase".into());
                }
                source.validate()?;
                if let Some(cfg) = &self.agreement {
                    if cfg.n != *n {
                        return fail(format!(
                            "agreement constants sized for n={}, scenario has n={n}",
                            cfg.n
                        ));
                    }
                    // Safe now: the parameters passed `source.validate()`.
                    let cost = source.build().max_cost();
                    if cost > cfg.eval_cost {
                        return fail(format!(
                            "source cost {cost} exceeds configured eval budget {}",
                            cfg.eval_cost
                        ));
                    }
                }
                None
            }
            Mode::Kernel { kernel, n, ticks } => {
                if *n < 1 {
                    return fail("kernel scenario needs ≥ 1 processor".into());
                }
                if *ticks < 1 {
                    return fail("kernel scenario must run ≥ 1 tick".into());
                }
                kernel.validate().map_err(ScenarioError)?;
                if self.agreement.is_some() {
                    return fail("kernel scenarios take no agreement constants".into());
                }
                None
            }
        };
        self.validate_schedule()?;
        Ok(resolved)
    }

    fn validate_schedule(&self) -> Result<(), ScenarioError> {
        // Per-family parameter ranges, partition coverage, factor-vector
        // sizes, scripted-n matching — all delegated to the algebra
        // ([`AdversarySpec::validate`]), which checks every leaf of a
        // composition against the machine size it will drive.
        self.schedule.validate(self.n()).map_err(ScenarioError)
    }

    /// Assemble the scheme-mode run without executing it (the layered
    /// entry point the trial runner's recipes use), on the scenario's
    /// [`EngineKnobs::program_engine`].
    ///
    /// # Panics
    /// If the scenario is invalid or not scheme-mode.
    pub fn build_scheme(&self) -> SchemeRun {
        self.build_scheme_obs(None, &Obs::disabled())
    }

    /// [`Scenario::build_scheme`] with a runtime interpreter-engine
    /// override (`None` assembles the knob as written) and a trace sink:
    /// when tracing is enabled and the bytecode engine is selected, the
    /// lowering pass emits one `compile`-scope event carrying its sizing
    /// counters ([`apex_bc::CompileStats`]).
    ///
    /// # Panics
    /// If the scenario is invalid or not scheme-mode.
    pub fn build_scheme_obs(&self, engine: Option<ProgramEngine>, obs: &Obs) -> SchemeRun {
        let program = match self.validate_resolving() {
            Ok(Some(p)) => p,
            Ok(None) => panic!("scenario is not scheme-mode"),
            Err(e) => panic!("invalid scenario: {e}"),
        };
        let Mode::Scheme {
            scheme, replicas, ..
        } = &self.mode
        else {
            unreachable!("validate_resolving returned a program");
        };
        let mut cfg = SchemeRunConfig::new(*scheme, self.seed).schedule(self.schedule.clone());
        cfg.k = *replicas;
        cfg.agreement = self.agreement;
        cfg.batch = self.engine.batch;
        cfg.tick_budget = self.engine.tick_budget;
        match engine.unwrap_or(self.engine.program_engine) {
            ProgramEngine::Tree => SchemeRun::new(program, cfg),
            ProgramEngine::Bytecode => SchemeRun::new_with_factory(program, cfg, |parts| {
                let compiled = Rc::new(apex_bc::compile(parts));
                if obs.enabled() {
                    let s = compiled.stats();
                    obs.emit(
                        "compile",
                        "lower",
                        0,
                        &parts.program.name,
                        &[
                            ("steps", s.steps),
                            ("threads", s.threads),
                            ("slots", s.slots),
                            ("live_slots", s.live_slots),
                        ],
                    );
                }
                apex_bc::factory_of(compiled, parts)
            }),
        }
    }

    /// Assemble the agreement-mode run without executing it.
    ///
    /// # Panics
    /// If the scenario is invalid or not agreement-mode.
    pub fn build_agreement(&self) -> AgreementRun {
        if let Err(e) = self.validate() {
            panic!("invalid scenario: {e}");
        }
        let Mode::Agreement {
            n,
            source,
            instrument,
            ..
        } = &self.mode
        else {
            panic!("scenario is not agreement-mode");
        };
        let source = source.build();
        let cfg = self
            .agreement
            .unwrap_or_else(|| AgreementConfig::for_n(*n, source.max_cost()));
        let mut run = AgreementRun::with_schedule_batched(
            cfg,
            self.seed,
            self.schedule.build(cfg.n, self.seed),
            source,
            *instrument,
            self.engine.batch,
        );
        run.stall_budget = self.engine.tick_budget;
        run
    }

    /// Validate, assemble, and execute the scenario.
    ///
    /// ```
    /// use apex_scenario::{ProgramSource, Scenario};
    /// use apex_scheme::SchemeKind;
    ///
    /// // Run a randomized program on 8 asynchronous processors.
    /// let report = Scenario::scheme(
    ///     SchemeKind::Nondet,
    ///     ProgramSource::library("coin-sum", 8, vec![32]),
    ///     1,
    /// )
    /// .run();
    /// assert!(report.ok());
    /// ```
    ///
    /// # Panics
    /// If [`Scenario::validate`] fails (validate first when the scenario
    /// comes from an untrusted file) or the run trips a stall budget.
    pub fn run(&self) -> ScenarioReport {
        self.run_with_exec(None)
    }

    /// [`Scenario::run`] with a runtime engine override: `Some(mode)`
    /// replaces the scenario's [`EngineKnobs::exec`] knob for this
    /// execution only — the scenario document (and so its digest) is
    /// untouched, and since reports are engine-independent the output
    /// bytes cannot change either. `None` runs the knob as written.
    /// Scheme and agreement modes always execute serially regardless.
    pub fn run_with_exec(&self, exec: Option<ExecMode>) -> ScenarioReport {
        self.run_with_exec_obs(exec, &Obs::disabled()).0
    }

    /// [`Scenario::run`] with runtime overrides for *both* engine knobs:
    /// `exec` for kernel scenarios, `engine` for scheme scenarios. As with
    /// [`Scenario::run_with_exec`], `Some(_)` replaces the corresponding
    /// knob for this execution only — the document and its digest are
    /// untouched, and since reports are engine-independent the output
    /// bytes cannot change either.
    pub fn run_with_engines(
        &self,
        exec: Option<ExecMode>,
        engine: Option<ProgramEngine>,
    ) -> ScenarioReport {
        self.run_with_engines_obs(exec, engine, &Obs::disabled()).0
    }

    /// [`Scenario::run_with_exec`] with a trace sink, also returning the
    /// engine's (telemetry-only) [`ExecStats`]. When tracing is enabled,
    /// scheme/agreement runs emit `engine`-scope block events (labelled
    /// with the adversary's self-description, so traces attribute ticks
    /// per adversary combinator) and kernel runs emit the ticketed
    /// engine's window/commit/conflict events. Telemetry never changes a
    /// byte of the report.
    pub fn run_with_exec_obs(
        &self,
        exec: Option<ExecMode>,
        obs: &Obs,
    ) -> (ScenarioReport, ExecStats) {
        self.run_with_engines_obs(exec, None, obs)
    }

    /// [`Scenario::run_with_engines`] with a trace sink (the fully general
    /// executor every other `run*` method delegates to). In addition to
    /// the events described on [`Scenario::run_with_exec_obs`], a scheme
    /// run on the bytecode engine emits one `compile`-scope event with the
    /// lowering pass's sizing counters.
    pub fn run_with_engines_obs(
        &self,
        exec: Option<ExecMode>,
        engine: Option<ProgramEngine>,
        obs: &Obs,
    ) -> (ScenarioReport, ExecStats) {
        match &self.mode {
            Mode::Scheme { .. } => {
                let mut run = self.build_scheme_obs(engine, obs);
                if obs.enabled() {
                    install_block_hook(run.machine_mut(), obs);
                }
                (ScenarioReport::Scheme(run.run()), ExecStats::serial())
            }
            Mode::Agreement { phases, .. } => {
                let phases = *phases;
                let mut run = self.build_agreement();
                if obs.enabled() {
                    install_block_hook(run.machine_mut(), obs);
                }
                let outcomes = run.run_phases(phases);
                (
                    ScenarioReport::Agreement(AgreementRunReport {
                        outcomes,
                        ticks: run.machine().ticks(),
                        stability_violations: run.stability_violations(),
                    }),
                    ExecStats::serial(),
                )
            }
            Mode::Kernel { kernel, n, ticks } => {
                if let Err(e) = self.validate() {
                    panic!("invalid scenario: {e}");
                }
                let mode = exec.unwrap_or(self.engine.exec);
                let (report, stats) = apex_exec::run_kernel_obs(
                    *kernel,
                    *n,
                    *ticks,
                    &self.schedule,
                    self.seed,
                    self.engine.batch,
                    mode,
                    obs,
                );
                (ScenarioReport::Kernel(report), stats)
            }
        }
    }

    /// Serialize to the versioned JSON value (canonical field order).
    pub fn to_json(&self) -> Json {
        let mode = match &self.mode {
            Mode::Scheme {
                scheme,
                program,
                replicas,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("scheme".into())),
                ("scheme".into(), Json::Str(scheme.label().into())),
                ("replicas".into(), Json::UInt(replicas.0 as u64)),
                ("program".into(), program.to_json()),
            ]),
            Mode::Agreement {
                n,
                source,
                phases,
                instrument,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("agreement".into())),
                ("n".into(), Json::UInt(*n as u64)),
                ("phases".into(), Json::UInt(*phases as u64)),
                ("source".into(), source.to_json()),
                (
                    "instrument".into(),
                    Json::Obj(vec![
                        ("record_events".into(), Json::Bool(instrument.record_events)),
                        (
                            "count_clobbers".into(),
                            Json::Bool(instrument.count_clobbers),
                        ),
                    ]),
                ),
            ]),
            Mode::Kernel { kernel, n, ticks } => Json::Obj(vec![
                ("kind".into(), Json::Str("kernel".into())),
                ("kernel".into(), kernel.to_json()),
                ("n".into(), Json::UInt(*n as u64)),
                ("ticks".into(), Json::UInt(*ticks)),
            ]),
        };
        Json::Obj(vec![
            (
                "version".into(),
                Json::Obj(vec![
                    ("major".into(), Json::UInt(FORMAT_MAJOR)),
                    ("minor".into(), Json::UInt(FORMAT_MINOR)),
                ]),
            ),
            ("seed".into(), Json::UInt(self.seed)),
            ("mode".into(), mode),
            ("schedule".into(), self.schedule.to_json()),
            (
                "agreement".into(),
                self.agreement
                    .as_ref()
                    .map_or(Json::Null, agreement_config_to_json),
            ),
            ("engine".into(), self.engine.to_json()),
        ])
    }

    /// Deserialize from a JSON value. Rejects unknown major versions;
    /// unknown minor versions are read (the format only grows additively
    /// within a major). Structural validation happens here; semantic
    /// validation is [`Scenario::validate`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = v
            .get("version")
            .map_err(|_| jerr("scenario document has no version field"))?;
        let major = version.get("major")?.as_u64()?;
        if major != FORMAT_MAJOR {
            return Err(jerr(format!(
                "unsupported scenario format major version {major} (this build reads {FORMAT_MAJOR})"
            )));
        }
        let mode_v = v.get("mode")?;
        let mode = match mode_v.get("kind")?.as_str()? {
            "scheme" => Mode::Scheme {
                scheme: scheme_from_label(mode_v.get("scheme")?.as_str()?)?,
                replicas: ReplicaK(mode_v.get("replicas")?.as_usize()?),
                program: ProgramSource::from_json(mode_v.get("program")?)?,
            },
            "agreement" => {
                let instr = mode_v.get("instrument")?;
                let flag = |key: &str| -> Result<bool, JsonError> {
                    match instr.get(key)? {
                        Json::Bool(b) => Ok(*b),
                        other => Err(jerr(format!("expected bool {key}, got {other:?}"))),
                    }
                };
                Mode::Agreement {
                    n: mode_v.get("n")?.as_usize()?,
                    phases: mode_v.get("phases")?.as_usize()?,
                    source: SourceSpec::from_json(mode_v.get("source")?)?,
                    instrument: InstrumentOpts {
                        record_events: flag("record_events")?,
                        count_clobbers: flag("count_clobbers")?,
                    },
                }
            }
            "kernel" => Mode::Kernel {
                kernel: KernelSpec::from_json(mode_v.get("kernel")?)?,
                n: mode_v.get("n")?.as_usize()?,
                ticks: mode_v.get("ticks")?.as_u64()?,
            },
            other => return Err(jerr(format!("unknown scenario mode {other:?}"))),
        };
        Ok(Scenario {
            mode,
            schedule: AdversarySpec::from_json(v.get("schedule")?)?,
            seed: v.get("seed")?.as_u64()?,
            agreement: match v.get_opt("agreement") {
                None | Some(Json::Null) => None,
                Some(cfg) => Some(agreement_config_from_json(cfg)?),
            },
            engine: match v.get_opt("engine") {
                None | Some(Json::Null) => EngineKnobs::default(),
                Some(e) => EngineKnobs::from_json(e)?,
            },
        })
    }

    /// Parse a complete scenario document.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// The canonical pretty-printed document (what [`Scenario::load`]
    /// reads and the golden-file test pins).
    pub fn render_pretty(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Write the canonical document to `path` atomically
    /// (temp + fsync + rename; see [`crate::atomic_write`]).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        crate::record::atomic_write(path, &self.render_pretty())
    }

    /// Load and parse a scenario file (structural errors only; call
    /// [`Scenario::validate`] before running it).
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Wire a machine's block boundaries into the trace: one `engine`-scope
/// `block` event per executed block, op-indexed by the machine's tick
/// counter and labelled with the adversary's self-description (which is
/// what gives `apex obs view` its per-adversary tick attribution).
fn install_block_hook(machine: &mut apex_sim::Machine, obs: &Obs) {
    let label = machine.schedule_description();
    let obs = obs.clone();
    machine.set_block_hook(Box::new(move |executed, ticks, work| {
        obs.emit(
            "engine",
            "block",
            ticks,
            &label,
            &[("ticks", executed), ("work", work)],
        );
    }));
}

/// 64-bit FNV-1a over `bytes` — the workspace's content-address hash
/// (dependency-free, stable across platforms and versions; the same
/// construction names fuzz-corpus artifacts).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Serialize the agreement constants (all fields explicit, so a scenario
/// pins the exact protocol point even if defaults change).
pub fn agreement_config_to_json(cfg: &AgreementConfig) -> Json {
    Json::Obj(vec![
        ("n".into(), Json::UInt(cfg.n as u64)),
        ("beta".into(), Json::UInt(cfg.beta as u64)),
        ("cells_per_bin".into(), Json::UInt(cfg.cells_per_bin as u64)),
        ("omega".into(), Json::UInt(cfg.omega)),
        (
            "clock_read_period".into(),
            Json::UInt(cfg.clock_read_period),
        ),
        ("update_period".into(), Json::UInt(cfg.update_period)),
        ("eval_cost".into(), Json::UInt(cfg.eval_cost)),
        ("clock_threshold".into(), Json::UInt(cfg.clock_threshold)),
    ])
}

/// Deserialize the agreement constants.
pub fn agreement_config_from_json(v: &Json) -> Result<AgreementConfig, JsonError> {
    Ok(AgreementConfig {
        n: v.get("n")?.as_usize()?,
        beta: v.get("beta")?.as_usize()?,
        cells_per_bin: v.get("cells_per_bin")?.as_usize()?,
        omega: v.get("omega")?.as_u64()?,
        clock_read_period: v.get("clock_read_period")?.as_u64()?,
        update_period: v.get("update_period")?.as_u64()?,
        eval_cost: v.get("eval_cost")?.as_u64()?,
        clock_threshold: v.get("clock_threshold")?.as_u64()?,
    })
}
