//! [`RunOutcome`] — the typed result of *attempting* a scenario run.
//!
//! [`Scenario::run`] panics when a run trips its liveness budget and, like
//! any code, can panic on a genuine engine bug. Campaign infrastructure
//! (the lab's suite runner, long-lived services) must survive both: one
//! bad cell may not tear down a million-cell campaign. `RunOutcome`
//! captures a run under [`std::panic::catch_unwind`] and classifies the
//! result into three *typed* cases — completed, budget-exhausted
//! (a partial outcome: the run is live data, not an inconsistency), and
//! poisoned (a panic) — each with an exact JSON codec so journals,
//! manifests, and reports stay serializable like everything else here.

use apex_sim::{Json, JsonError};

use crate::record::{atomic_write, ReportRecord};
use crate::scenario::Scenario;

/// Major version of the outcome JSON format (mismatches are rejected).
pub const OUTCOME_FORMAT_MAJOR: u64 = 1;
/// Minor version of the outcome JSON format (additive extensions only).
pub const OUTCOME_FORMAT_MINOR: u64 = 0;

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// What one attempted scenario run produced.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// The run completed; the full content-addressed record (boxed — a
    /// record dwarfs the other variants).
    Complete(Box<ReportRecord>),
    /// The run exhausted a tick/stall budget before completing — a typed
    /// *partial* outcome (the adversary starved the machine past the
    /// liveness bar), not an error string and not a crash.
    Exhausted {
        /// The scenario that ran out of budget.
        scenario: Scenario,
        /// The budget trip message (deterministic for a fixed scenario).
        message: String,
    },
    /// The run panicked: an engine or scheme bug. The cell is poisoned —
    /// recorded, isolated, and reported, never silently retried.
    Poisoned {
        /// The scenario that panicked.
        scenario: Scenario,
        /// The panic message (deterministic for a fixed scenario).
        message: String,
    },
}

impl RunOutcome {
    /// Execute `scenario` under `catch_unwind`, classifying a budget trip
    /// (the harnesses' `clock stalled …` asserts) as [`Exhausted`] and any
    /// other panic as [`Poisoned`].
    ///
    /// [`Exhausted`]: RunOutcome::Exhausted
    /// [`Poisoned`]: RunOutcome::Poisoned
    pub fn capture(scenario: &Scenario) -> Self {
        Self::capture_with(scenario, ReportRecord::run)
    }

    /// [`RunOutcome::capture`] with a runtime execution-engine override
    /// (see [`Scenario::run_with_exec`]); `None` is exactly `capture`.
    pub fn capture_exec(scenario: &Scenario, exec: Option<apex_exec::ExecMode>) -> Self {
        Self::capture_engines(scenario, exec, None)
    }

    /// [`RunOutcome::capture`] with runtime overrides for *both* engine
    /// knobs (see [`Scenario::run_with_engines`]); `(None, None)` is
    /// exactly `capture`.
    pub fn capture_engines(
        scenario: &Scenario,
        exec: Option<apex_exec::ExecMode>,
        engine: Option<crate::scenario::ProgramEngine>,
    ) -> Self {
        Self::capture_with(scenario, move |s| {
            ReportRecord::run_engines(s, exec, engine)
        })
    }

    /// [`RunOutcome::capture_exec`] with telemetry: trace events go to
    /// `obs`, and the engine's [`apex_exec::ExecStats`] are returned even
    /// though the run itself executes under `catch_unwind` (a run that
    /// panics reports the trivial serial stats). The outcome is
    /// byte-identical to `capture_exec`'s — telemetry never steers a run.
    pub fn capture_exec_obs(
        scenario: &Scenario,
        exec: Option<apex_exec::ExecMode>,
        obs: &apex_obs::Obs,
    ) -> (Self, apex_exec::ExecStats) {
        Self::capture_engines_obs(scenario, exec, None, obs)
    }

    /// [`RunOutcome::capture_engines`] with telemetry (the fully general
    /// capture; every other `capture*` entry point delegates here).
    pub fn capture_engines_obs(
        scenario: &Scenario,
        exec: Option<apex_exec::ExecMode>,
        engine: Option<crate::scenario::ProgramEngine>,
        obs: &apex_obs::Obs,
    ) -> (Self, apex_exec::ExecStats) {
        use std::sync::{Arc, Mutex};
        // The stats ride out of the catch_unwind closure through a shared
        // cell: on a panic the closure never reaches the store, so the
        // cell keeps its trivial default.
        let cell = Arc::new(Mutex::new(apex_exec::ExecStats::serial()));
        let slot = Arc::clone(&cell);
        let obs = obs.clone();
        let outcome = Self::capture_with(scenario, move |s| {
            let (record, stats) = ReportRecord::run_engines_obs(s, exec, engine, &obs);
            *slot.lock().unwrap() = stats;
            record
        });
        let stats = *cell.lock().unwrap();
        (outcome, stats)
    }

    /// [`RunOutcome::capture`] with an explicit runner — the seam the
    /// lab's fault-injection harness uses to panic a chosen cell.
    pub fn capture_with(scenario: &Scenario, run: impl FnOnce(&Scenario) -> ReportRecord) -> Self {
        let result = {
            let scenario = scenario.clone();
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || run(&scenario)))
        };
        match result {
            Ok(record) => RunOutcome::Complete(Box::new(record)),
            Err(payload) => {
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                if message.contains("clock stalled") {
                    RunOutcome::Exhausted {
                        scenario: scenario.clone(),
                        message,
                    }
                } else {
                    RunOutcome::Poisoned {
                        scenario: scenario.clone(),
                        message,
                    }
                }
            }
        }
    }

    /// The scenario this outcome is about.
    pub fn scenario(&self) -> &Scenario {
        match self {
            RunOutcome::Complete(r) => &r.scenario,
            RunOutcome::Exhausted { scenario, .. } | RunOutcome::Poisoned { scenario, .. } => {
                scenario
            }
        }
    }

    /// The outcome's content address ([`Scenario::digest`]).
    pub fn digest(&self) -> String {
        self.scenario().digest()
    }

    /// The completed record, when there is one.
    pub fn record(&self) -> Option<&ReportRecord> {
        match self {
            RunOutcome::Complete(r) => Some(r.as_ref()),
            _ => None,
        }
    }

    /// Whether the run completed *and* met its mode's correctness bar.
    pub fn ok(&self) -> bool {
        matches!(self, RunOutcome::Complete(r) if r.ok())
    }

    /// Stable status label: `complete`, `exhausted`, or `poisoned` (what
    /// journals and store manifests record).
    pub fn status(&self) -> &'static str {
        match self {
            RunOutcome::Complete(_) => "complete",
            RunOutcome::Exhausted { .. } => "exhausted",
            RunOutcome::Poisoned { .. } => "poisoned",
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        match self {
            RunOutcome::Complete(r) => r.report.summary(),
            RunOutcome::Exhausted { message, .. } => format!("exhausted: {message}"),
            RunOutcome::Poisoned { message, .. } => format!("poisoned: {message}"),
        }
    }

    /// Serialize to the versioned outcome document (canonical field
    /// order). Complete outcomes embed the full record document.
    pub fn to_json(&self) -> Json {
        let version = Json::Obj(vec![
            ("major".into(), Json::UInt(OUTCOME_FORMAT_MAJOR)),
            ("minor".into(), Json::UInt(OUTCOME_FORMAT_MINOR)),
        ]);
        match self {
            RunOutcome::Complete(r) => Json::Obj(vec![
                ("version".into(), version),
                ("status".into(), Json::Str("complete".into())),
                ("record".into(), r.to_json()),
            ]),
            RunOutcome::Exhausted { scenario, message }
            | RunOutcome::Poisoned { scenario, message } => Json::Obj(vec![
                ("version".into(), version),
                ("status".into(), Json::Str(self.status().into())),
                ("digest".into(), Json::Str(scenario.digest())),
                ("scenario".into(), scenario.to_json()),
                ("message".into(), Json::Str(message.clone())),
            ]),
        }
    }

    /// Deserialize an outcome document (rejects unknown major versions
    /// and unknown status tags).
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = v
            .get("version")
            .map_err(|_| jerr("outcome document has no version field"))?;
        let major = version.get("major")?.as_u64()?;
        if major != OUTCOME_FORMAT_MAJOR {
            return Err(jerr(format!(
                "unsupported outcome format major version {major} (this build reads \
                 {OUTCOME_FORMAT_MAJOR})"
            )));
        }
        match v.get("status")?.as_str()? {
            "complete" => Ok(RunOutcome::Complete(Box::new(ReportRecord::from_json(
                v.get("record")?,
            )?))),
            status @ ("exhausted" | "poisoned") => {
                let scenario = Scenario::from_json(v.get("scenario")?)?;
                let stored = v.get("digest")?.as_str()?;
                let actual = scenario.digest();
                if stored != actual {
                    return Err(jerr(format!(
                        "outcome digest {stored:?} does not match its scenario (expected \
                         {actual:?})"
                    )));
                }
                let message = v.get("message")?.as_str()?.to_string();
                Ok(if status == "exhausted" {
                    RunOutcome::Exhausted { scenario, message }
                } else {
                    RunOutcome::Poisoned { scenario, message }
                })
            }
            other => Err(jerr(format!("unknown outcome status {other:?}"))),
        }
    }

    /// Parse a complete outcome document.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// The canonical pretty-printed document.
    pub fn render_pretty(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Write the canonical document to `path` atomically
    /// (temp + fsync + rename).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        atomic_write(path, &self.render_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramSource;
    use crate::scenario::SourceSpec;
    use apex_scheme::SchemeKind;

    fn base() -> Scenario {
        Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::library("tree-reduce-max", 8, vec![3]),
            7,
        )
    }

    #[test]
    fn capture_completes_healthy_runs() {
        let outcome = RunOutcome::capture(&base());
        assert!(outcome.ok());
        assert_eq!(outcome.status(), "complete");
        assert_eq!(outcome.digest(), base().digest());
        assert!(outcome.record().is_some());
    }

    #[test]
    fn capture_classifies_stalls_and_panics() {
        let poisoned = RunOutcome::capture_with(&base(), |_| panic!("injected fault: boom"));
        assert!(!poisoned.ok());
        assert_eq!(poisoned.status(), "poisoned");
        assert!(
            poisoned.summary().contains("injected fault"),
            "{poisoned:?}"
        );

        let exhausted =
            RunOutcome::capture_with(&base(), |_| panic!("clock stalled before value 3"));
        assert_eq!(exhausted.status(), "exhausted");
        assert!(!exhausted.ok());
        assert!(exhausted.summary().starts_with("exhausted:"));
    }

    #[test]
    fn a_real_budget_trip_degrades_to_exhausted() {
        // An absurdly small stall budget makes the scheme harness trip its
        // liveness assert; capture must type it, not crash.
        let outcome = RunOutcome::capture(&base().tick_budget(1));
        assert_eq!(outcome.status(), "exhausted", "{}", outcome.summary());
        // Deterministic: the same scenario exhausts with the same message.
        let again = RunOutcome::capture(&base().tick_budget(1));
        assert_eq!(outcome.summary(), again.summary());
    }

    #[test]
    fn outcome_documents_round_trip_byte_identically() {
        let outcomes = [
            RunOutcome::capture(&base()),
            RunOutcome::capture(&Scenario::agreement(8, SourceSpec::Keyed, 1, 3)),
            RunOutcome::capture_with(&base(), |_| panic!("injected fault: boom")),
            RunOutcome::capture_with(&base(), |_| panic!("clock stalled before value 1")),
        ];
        for outcome in outcomes {
            let text = outcome.render_pretty();
            let back = RunOutcome::parse(&text).unwrap();
            assert_eq!(back.render_pretty(), text);
            assert_eq!(back.status(), outcome.status());
            assert_eq!(back.digest(), outcome.digest());
        }
    }

    #[test]
    fn tampered_digest_and_unknown_status_are_rejected() {
        let outcome = RunOutcome::capture_with(&base(), |_| panic!("boom"));
        let mut json = outcome.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[2].1 = Json::Str("0000000000000000".into());
        }
        assert!(RunOutcome::from_json(&json)
            .unwrap_err()
            .msg
            .contains("digest"));

        let mut json = outcome.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[1].1 = Json::Str("vaporized".into());
        }
        assert!(RunOutcome::from_json(&json)
            .unwrap_err()
            .msg
            .contains("status"));
    }
}
