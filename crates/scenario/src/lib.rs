//! # apex-scenario — one declarative entry point for every run
//!
//! The paper's claim is parameterized over a whole space: program ×
//! execution scheme × oblivious adversary × protocol constants × seed.
//! This crate names one point of that space as a single serializable
//! value, the [`Scenario`] — the way verification tooling for
//! asynchronous programs treats the program-plus-schedule pair as one
//! first-class analyzable object.
//!
//! * [`Scenario`] — the description: a [`Mode`] (PRAM program through a
//!   [`SchemeKind`](apex_scheme::SchemeKind), or the raw agreement
//!   protocol), a [`ScheduleKind`](apex_sim::ScheduleKind), the master
//!   seed, optional [`AgreementConfig`](apex_core::AgreementConfig)
//!   override, and [`EngineKnobs`];
//! * [`Scenario::validate`] — rejects ill-formed points before any
//!   machine is assembled;
//! * [`Scenario::run`] — validate, assemble, execute, and report
//!   ([`ScenarioReport`]);
//! * [`Scenario::to_json`] / [`Scenario::from_json`] — a versioned,
//!   exact round-trip through the workspace's dependency-free codec
//!   ([`apex_sim::json`]), so every run anyone constructs — fuzzer
//!   finding, benchmark cell, or hand-written experiment — is a
//!   shareable JSON file that reproduces bit-for-bit
//!   (`cargo run -p apex-synth -- run scenario.json`).
//!
//! The bench runner's trial recipes, the fuzzer's reproducers, and the
//! examples are all thin wrappers over this type.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cache;
mod outcome;
mod program;
mod record;
mod report;
mod scenario;

// Re-exported so downstream crates (lab, farm, cli, synth) can name the
// execution engine and kernel families without depending on apex-exec.
pub use apex_exec::{ExecMode, ExecStats, KernelReport, KernelSpec};

pub use cache::{CacheStats, CACHE_FORMAT_MAJOR, CACHE_FORMAT_MINOR};
pub use outcome::{RunOutcome, OUTCOME_FORMAT_MAJOR, OUTCOME_FORMAT_MINOR};
pub use program::{
    op_from_name, op_name, program_from_json, program_to_json, scheme_from_label, ProgramSource,
};
pub use record::{atomic_write, ReportRecord, RECORD_FORMAT_MAJOR, RECORD_FORMAT_MINOR};
pub use report::{
    scheme_report_from_json, scheme_report_to_json, verify_report_from_json, verify_report_to_json,
    AgreementRunReport, ScenarioReport,
};
pub use scenario::{
    agreement_config_from_json, agreement_config_to_json, fnv1a64, EngineKnobs, Mode,
    ProgramEngine, Scenario, ScenarioError, SourceSpec, FORMAT_MAJOR, FORMAT_MINOR,
};

#[cfg(test)]
mod tests {
    use super::*;
    use apex_core::{AgreementConfig, InstrumentOpts};
    use apex_pram::library::coin_sum;
    use apex_pram::Op;
    use apex_scheme::SchemeKind;
    use apex_sim::{Json, ScheduleKind, ScriptSegment, ScriptSpec};

    fn gallery_scenarios() -> Vec<Scenario> {
        let scripted = ScheduleKind::Scripted(
            ScriptSpec::new(
                8,
                vec![
                    ScriptSegment::Run { proc: 1, ticks: 64 },
                    ScriptSegment::AllExcept {
                        excluded: vec![0],
                        rounds: 3,
                    },
                ],
            )
            .fallback(ScheduleKind::Bursty { mean_burst: 16 }),
        );
        vec![
            Scenario::scheme(
                SchemeKind::Nondet,
                ProgramSource::library("coin-sum", 8, vec![32]),
                1,
            ),
            Scenario::scheme(
                SchemeKind::DetBaseline,
                ProgramSource::Explicit(coin_sum(4, 8).program),
                2,
            )
            .schedule(ScheduleKind::Sleepy {
                sleepy_frac: 0.25,
                awake: 100,
                asleep: 900,
            })
            .replicas(3)
            .batch(64),
            Scenario::scheme(
                SchemeKind::IdealCas,
                ProgramSource::library("random-walks", 8, vec![1000, 4]),
                3,
            )
            .schedule(scripted)
            .tick_budget(50_000_000),
            Scenario::agreement(16, SourceSpec::Random(100), 2, 4)
                .schedule(ScheduleKind::Zipf { s: 1.5 })
                .instrument(InstrumentOpts::full()),
            Scenario::agreement(8, SourceSpec::Coin(1, 4), 1, 5)
                .agreement_config(AgreementConfig::for_n(8, 1)),
            Scenario::agreement(8, SourceSpec::Keyed, 1, 6).schedule(ScheduleKind::TwoClass {
                slow_frac: 0.25,
                ratio: 8.0,
            }),
        ]
    }

    #[test]
    fn gallery_validates_and_round_trips_exactly() {
        for s in gallery_scenarios() {
            s.validate().unwrap_or_else(|e| panic!("{s:?}: {e}"));
            let compact = Scenario::parse(&s.to_json().render()).unwrap();
            let pretty = Scenario::parse(&s.render_pretty()).unwrap();
            assert_eq!(compact, s);
            assert_eq!(pretty, s);
        }
    }

    #[test]
    fn unknown_major_version_is_rejected_and_minor_is_tolerated() {
        let s = gallery_scenarios().remove(0);
        let mut json = s.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Obj(vec![
                ("major".into(), Json::UInt(FORMAT_MAJOR + 1)),
                ("minor".into(), Json::UInt(0)),
            ]);
        }
        let err = Scenario::from_json(&json).unwrap_err();
        assert!(err.msg.contains("major version"), "{err}");

        let mut json = s.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Obj(vec![
                ("major".into(), Json::UInt(FORMAT_MAJOR)),
                ("minor".into(), Json::UInt(FORMAT_MINOR + 7)),
            ]);
        }
        assert_eq!(Scenario::from_json(&json).unwrap(), s);
    }

    #[test]
    fn missing_version_is_rejected() {
        let e = Scenario::parse("{\"seed\": 1}").unwrap_err();
        assert!(e.msg.contains("version"), "{e}");
    }

    #[test]
    fn validate_rejects_ill_formed_points() {
        let bad_library = Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::library("no-such-program", 8, vec![]),
            1,
        );
        assert!(bad_library.validate().is_err());

        let bad_n = Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::library("coin-sum", 6, vec![32]),
            1,
        );
        assert!(bad_n.validate().is_err());

        let bad_params = Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::library("coin-sum", 8, vec![]),
            1,
        );
        assert!(bad_params.validate().is_err());

        let mismatched_script = Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::library("coin-sum", 8, vec![32]),
            1,
        )
        .schedule(ScheduleKind::Scripted(ScriptSpec::new(4, vec![])));
        assert!(mismatched_script.validate().is_err());

        let mismatched_cfg = Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::library("coin-sum", 8, vec![32]),
            1,
        )
        .agreement_config(AgreementConfig::for_n(16, 4));
        assert!(mismatched_cfg.validate().is_err());

        let zero_batch = Scenario::agreement(8, SourceSpec::Random(10), 1, 1).batch(0);
        assert!(zero_batch.validate().is_err());

        // Source parameters the sources themselves would assert on must be
        // caught by validate(), with or without a constants override.
        let zero_bound = Scenario::agreement(8, SourceSpec::Random(0), 1, 1);
        assert!(zero_bound.validate().is_err());
        let top_heavy_coin = Scenario::agreement(8, SourceSpec::Coin(5, 2), 1, 1);
        assert!(top_heavy_coin.validate().is_err());
        let top_heavy_with_cfg = Scenario::agreement(8, SourceSpec::Coin(5, 2), 1, 1)
            .agreement_config(AgreementConfig::for_n(8, 1));
        assert!(top_heavy_with_cfg.validate().is_err());

        let degenerate = Scenario::agreement(1, SourceSpec::Random(10), 1, 1);
        assert!(degenerate.validate().is_err());

        let bad_zipf = Scenario::agreement(8, SourceSpec::Random(10), 1, 1)
            .schedule(ScheduleKind::Zipf { s: -1.0 });
        assert!(bad_zipf.validate().is_err());
    }

    #[test]
    fn scheme_scenario_matches_direct_harness_run() {
        use apex_scheme::{SchemeRun, SchemeRunConfig};
        let scenario = Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::Explicit(coin_sum(8, 16).program),
            9,
        )
        .schedule(ScheduleKind::Bursty { mean_burst: 16 });
        let via_scenario = scenario.run();
        let direct = SchemeRun::new(
            coin_sum(8, 16).program,
            SchemeRunConfig::new(SchemeKind::Nondet, 9)
                .schedule(ScheduleKind::Bursty { mean_burst: 16 }),
        )
        .run();
        let r = via_scenario.scheme();
        assert_eq!(r.total_work, direct.total_work);
        assert_eq!(r.final_memory, direct.final_memory);
        assert!(via_scenario.ok());
        assert!(via_scenario.summary().contains("nondet-scheme"));
    }

    #[test]
    fn bytecode_engine_is_digest_preserving_and_report_identical() {
        let base = Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::library("coin-sum", 8, vec![32]),
            1,
        );
        let bc = base.clone().program_engine(ProgramEngine::Bytecode);
        // The Tree default is omitted from the document, so every
        // pre-existing scenario digest is byte-for-byte unchanged …
        assert!(!base.to_json().render().contains("program_engine"));
        assert_eq!(
            base.digest(),
            base.clone().program_engine(ProgramEngine::Tree).digest()
        );
        // … while an explicit bytecode knob round-trips exactly.
        assert_ne!(base.digest(), bc.digest());
        assert_eq!(Scenario::parse(&bc.to_json().render()).unwrap(), bc);
        // Reports are engine-independent down to the rendered bytes, both
        // via the document knob and via the runtime override.
        let tree = base.run();
        let via_knob = bc.run();
        let via_override = base.run_with_engines(None, Some(ProgramEngine::Bytecode));
        assert_eq!(tree.to_json().render(), via_knob.to_json().render());
        assert_eq!(tree.to_json().render(), via_override.to_json().render());
    }

    #[test]
    fn agreement_scenario_runs_and_batching_is_transparent() {
        let base = Scenario::agreement(8, SourceSpec::Random(100), 1, 42);
        let a = base.clone().run();
        let b = base.batch(1).run();
        let (a, b) = (a.agreement(), b.agreement());
        assert!(!a.outcomes.is_empty());
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.outcomes[0].advance_work, b.outcomes[0].advance_work);
        assert_eq!(a.outcomes[0].agreed, b.outcomes[0].agreed);
    }

    #[test]
    fn library_sources_resolve_across_the_catalog() {
        for (name, params) in ProgramSource::library_names() {
            let params: Vec<u64> = (0..params.len() as u64).map(|i| i + 2).collect();
            let source = ProgramSource::library(name, 8, params);
            let p = source.resolve().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(p.validate().is_ok(), "{name}");
            assert_eq!(p.n_threads, 8, "{name}");
        }
    }

    #[test]
    fn tree_reduce_library_source_computes_the_reduction() {
        use apex_pram::library::gen_values;
        use apex_pram::refexec::{execute, Choices};
        let p = ProgramSource::library("tree-reduce-max", 8, vec![3])
            .resolve()
            .unwrap();
        let expect = gen_values(8, 3).iter().copied().fold(0, u64::max);
        let out = execute(&p, &Choices::Seeded(0));
        assert!(out.memory.contains(&expect));
        let _ = Op::Max; // op table is part of this crate's public surface
    }
}
