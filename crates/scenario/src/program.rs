//! Program sources and the stable program JSON form.
//!
//! A [`ProgramSource`] names the workload of a scheme-mode scenario either
//! *by reference* — a library program plus its parameters, resolved against
//! [`apex_pram::library`] — or *by value* — an explicit [`Program`] carried
//! in full. The explicit form is what fuzz reproducers use (the program
//! text is the finding); the library form keeps hand-written scenarios
//! small and readable.
//!
//! The program JSON encoding (`op` names, operand objects, step rows with
//! `null` for inactive threads) is the stable artifact form introduced by
//! the synthesis subsystem's reproducers; it lives here now so every
//! scenario consumer shares one codec.

use apex_pram::library::{
    blelloch_scan, coin_sum, gen_values, hypercube_allreduce, jacobi_smooth, leader_election,
    matvec, odd_even_sort, random_walks, tree_reduce, Built,
};
use apex_pram::{Instr, Op, Operand, Program, VarBlock, VarId};
use apex_scheme::SchemeKind;
use apex_sim::{Json, JsonError};

use crate::scenario::ScenarioError;

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// `Op` → stable artifact name.
pub fn op_name(op: Op) -> &'static str {
    match op {
        Op::Add => "add",
        Op::Sub => "sub",
        Op::Mul => "mul",
        Op::Min => "min",
        Op::Max => "max",
        Op::Xor => "xor",
        Op::And => "and",
        Op::Or => "or",
        Op::Shl => "shl",
        Op::Shr => "shr",
        Op::Lt => "lt",
        Op::Eq => "eq",
        Op::Mov => "mov",
        Op::RandBit => "rand-bit",
        Op::RandBelow => "rand-below",
    }
}

/// Stable artifact name → `Op`.
pub fn op_from_name(name: &str) -> Result<Op, JsonError> {
    Ok(match name {
        "add" => Op::Add,
        "sub" => Op::Sub,
        "mul" => Op::Mul,
        "min" => Op::Min,
        "max" => Op::Max,
        "xor" => Op::Xor,
        "and" => Op::And,
        "or" => Op::Or,
        "shl" => Op::Shl,
        "shr" => Op::Shr,
        "lt" => Op::Lt,
        "eq" => Op::Eq,
        "mov" => Op::Mov,
        "rand-bit" => Op::RandBit,
        "rand-below" => Op::RandBelow,
        other => return Err(jerr(format!("unknown op {other:?}"))),
    })
}

/// Scheme label round-trip (uses [`SchemeKind::label`] names).
pub fn scheme_from_label(label: &str) -> Result<SchemeKind, JsonError> {
    Ok(match label {
        "nondet-scheme" => SchemeKind::Nondet,
        "det-baseline" => SchemeKind::DetBaseline,
        "scan-consensus" => SchemeKind::ScanConsensus,
        "ideal-cas" => SchemeKind::IdealCas,
        other => return Err(jerr(format!("unknown scheme {other:?}"))),
    })
}

fn operand_to_json(o: &Operand) -> Json {
    match o {
        Operand::Var(v) => Json::Obj(vec![("var".into(), Json::UInt(*v as u64))]),
        Operand::Const(c) => Json::Obj(vec![("const".into(), Json::UInt(*c))]),
    }
}

fn operand_from_json(v: &Json) -> Result<Operand, JsonError> {
    if let Some(var) = v.get_opt("var") {
        Ok(Operand::Var(var.as_usize()?))
    } else if let Some(c) = v.get_opt("const") {
        Ok(Operand::Const(c.as_u64()?))
    } else {
        Err(jerr(format!("operand needs var or const: {v:?}")))
    }
}

fn instr_to_json(i: &Instr) -> Json {
    Json::Obj(vec![
        ("dst".into(), Json::UInt(i.dst as u64)),
        ("op".into(), Json::Str(op_name(i.op).into())),
        ("a".into(), operand_to_json(&i.a)),
        ("b".into(), operand_to_json(&i.b)),
    ])
}

fn instr_from_json(v: &Json) -> Result<Instr, JsonError> {
    Ok(Instr::new(
        v.get("dst")?.as_usize()? as VarId,
        op_from_name(v.get("op")?.as_str()?)?,
        operand_from_json(v.get("a")?)?,
        operand_from_json(v.get("b")?)?,
    ))
}

/// Serialize a program to its JSON artifact form.
pub fn program_to_json(p: &Program) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(p.name.clone())),
        ("n_threads".into(), Json::UInt(p.n_threads as u64)),
        ("mem_size".into(), Json::UInt(p.mem_size as u64)),
        (
            "init".into(),
            Json::Arr(p.init.iter().map(|v| Json::UInt(*v)).collect()),
        ),
        (
            "steps".into(),
            Json::Arr(
                p.steps
                    .iter()
                    .map(|row| {
                        Json::Arr(
                            row.iter()
                                .map(|slot| match slot {
                                    None => Json::Null,
                                    Some(i) => instr_to_json(i),
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Deserialize and **validate** a program from its JSON artifact form.
pub fn program_from_json(v: &Json) -> Result<Program, JsonError> {
    let p = Program {
        name: v.get("name")?.as_str()?.to_string(),
        n_threads: v.get("n_threads")?.as_usize()?,
        mem_size: v.get("mem_size")?.as_usize()?,
        init: v
            .get("init")?
            .as_arr()?
            .iter()
            .map(|x| x.as_u64())
            .collect::<Result<_, _>>()?,
        steps: v
            .get("steps")?
            .as_arr()?
            .iter()
            .map(|row| {
                row.as_arr()?
                    .iter()
                    .map(|slot| match slot {
                        Json::Null => Ok(None),
                        other => instr_from_json(other).map(Some),
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<_, _>>()?,
    };
    p.validate()
        .map_err(|e| jerr(format!("invalid program in artifact: {e}")))?;
    Ok(p)
}

/// The workload of a scheme-mode scenario.
#[derive(Clone, Debug, PartialEq)]
pub enum ProgramSource {
    /// A library program, resolved by name against [`apex_pram::library`]
    /// (see [`ProgramSource::library_names`] for the catalog and each
    /// entry's parameter list).
    Library {
        /// Library entry name (e.g. `"coin-sum"`).
        name: String,
        /// Problem size / thread count (a power of two ≥ 2).
        n: usize,
        /// Entry-specific parameters, in catalog order.
        params: Vec<u64>,
    },
    /// An explicit program carried by value (fuzz reproducers, hand-built
    /// [`ProgramBuilder`](apex_pram::ProgramBuilder) workloads).
    Explicit(Program),
}

impl ProgramSource {
    /// A library source.
    pub fn library(name: &str, n: usize, params: Vec<u64>) -> Self {
        ProgramSource::Library {
            name: name.into(),
            n,
            params,
        }
    }

    /// The library catalog: `(name, params)` of every resolvable entry.
    /// `vseed` parameters feed [`gen_values`] to produce the input data.
    pub fn library_names() -> &'static [(&'static str, &'static [&'static str])] {
        &[
            ("coin-sum", &["bound"]),
            ("random-walks", &["init", "rounds"]),
            ("leader-election", &["rounds"]),
            ("tree-reduce-add", &["vseed"]),
            ("tree-reduce-max", &["vseed"]),
            ("blelloch-scan", &["vseed"]),
            ("jacobi-smooth", &["vseed", "iters"]),
            ("allreduce-add", &["vseed"]),
            ("matvec", &["vseed"]),
            ("odd-even-sort", &["vseed"]),
        ]
    }

    /// Build the program this source names. Library entries are resolved
    /// against the catalog; explicit programs are re-validated.
    pub fn resolve(&self) -> Result<Program, ScenarioError> {
        match self {
            ProgramSource::Explicit(p) => {
                p.validate()
                    .map_err(|e| ScenarioError(format!("invalid explicit program: {e}")))?;
                Ok(p.clone())
            }
            ProgramSource::Library { name, n, params } => {
                resolve_library(name, *n, params).map(|b| b.program)
            }
        }
    }

    /// The named input/output [`VarBlock`]s of this workload, when the
    /// source declares them. Library entries carry the [`Built`] I/O
    /// conventions, so JSON-driven runs can assert program *results* (the
    /// output block of the final memory), not just verifier cleanliness;
    /// explicit programs declare no blocks and return `None`.
    pub fn resolve_io(&self) -> Result<Option<(VarBlock, VarBlock)>, ScenarioError> {
        match self {
            ProgramSource::Explicit(_) => Ok(None),
            ProgramSource::Library { name, n, params } => {
                resolve_library(name, *n, params).map(|b| Some((b.inputs, b.outputs)))
            }
        }
    }

    /// Declared thread count without building the program.
    pub fn n_threads(&self) -> usize {
        match self {
            ProgramSource::Library { n, .. } => *n,
            ProgramSource::Explicit(p) => p.n_threads,
        }
    }

    pub(crate) fn to_json(&self) -> Json {
        match self {
            ProgramSource::Library { name, n, params } => Json::Obj(vec![
                ("source".into(), Json::Str("library".into())),
                ("name".into(), Json::Str(name.clone())),
                ("n".into(), Json::UInt(*n as u64)),
                (
                    "params".into(),
                    Json::Arr(params.iter().map(|p| Json::UInt(*p)).collect()),
                ),
            ]),
            ProgramSource::Explicit(p) => Json::Obj(vec![
                ("source".into(), Json::Str("explicit".into())),
                ("program".into(), program_to_json(p)),
            ]),
        }
    }

    pub(crate) fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.get("source")?.as_str()? {
            "library" => Ok(ProgramSource::Library {
                name: v.get("name")?.as_str()?.to_string(),
                n: v.get("n")?.as_usize()?,
                params: v
                    .get("params")?
                    .as_arr()?
                    .iter()
                    .map(|p| p.as_u64())
                    .collect::<Result<_, _>>()?,
            }),
            "explicit" => Ok(ProgramSource::Explicit(program_from_json(
                v.get("program")?,
            )?)),
            other => Err(jerr(format!("unknown program source {other:?}"))),
        }
    }
}

fn resolve_library(name: &str, n: usize, params: &[u64]) -> Result<Built, ScenarioError> {
    let fail = |msg: String| Err(ScenarioError(msg));
    if n < 2 || !n.is_power_of_two() {
        return fail(format!(
            "library program {name:?} needs a power-of-two n ≥ 2, got {n}"
        ));
    }
    let arity = match library_arity(name) {
        Some(a) => a,
        None => {
            return fail(format!(
                "unknown library program {name:?} (known: {})",
                ProgramSource::library_names()
                    .iter()
                    .map(|(n, _)| *n)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        }
    };
    if params.len() != arity {
        return fail(format!(
            "library program {name:?} takes {arity} params, got {}",
            params.len()
        ));
    }
    let as_count = |x: u64, what: &str| -> Result<usize, ScenarioError> {
        usize::try_from(x).map_err(|_| ScenarioError(format!("{what} {x} does not fit usize")))
    };
    let built = match name {
        "coin-sum" => {
            if params[0] == 0 {
                return fail("coin-sum bound must be ≥ 1".into());
            }
            coin_sum(n, params[0])
        }
        "random-walks" => random_walks(&vec![params[0]; n], as_count(params[1], "rounds")?),
        "leader-election" => leader_election(n, as_count(params[0], "rounds")?),
        "tree-reduce-add" => tree_reduce(Op::Add, &gen_values(n, params[0])),
        "tree-reduce-max" => tree_reduce(Op::Max, &gen_values(n, params[0])),
        "blelloch-scan" => blelloch_scan(&gen_values(n, params[0])),
        "jacobi-smooth" => jacobi_smooth(&gen_values(n, params[0]), as_count(params[1], "iters")?),
        "allreduce-add" => hypercube_allreduce(Op::Add, &gen_values(n, params[0])),
        "matvec" => matvec(
            &gen_values(n * n, params[0] ^ 1),
            &gen_values(n, params[0]),
            n,
        ),
        "odd-even-sort" => odd_even_sort(&gen_values(n, params[0])),
        _ => unreachable!("arity table covers the catalog"),
    };
    Ok(built)
}

fn library_arity(name: &str) -> Option<usize> {
    ProgramSource::library_names()
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, params)| params.len())
}
