//! [`ReportRecord`] — one run's evidence as a content-addressed artifact.
//!
//! A record binds the *question* (the canonical [`Scenario`] document) to
//! the *answer* (the exact [`ScenarioReport`], plus the named output
//! values when the workload declares them) in one versioned JSON file.
//! Records are keyed by [`Scenario::digest`] — the FNV-1a hash of the
//! canonical scenario document — so a store of records is a results cache:
//! the same scenario always lands at the same address, and a re-run that
//! produces different bytes at that address *is* drift.

use std::path::Path;

use apex_sim::{Json, JsonError};

use crate::report::ScenarioReport;
use crate::scenario::Scenario;

/// Major version of the record JSON format (major mismatches are
/// rejected on read).
pub const RECORD_FORMAT_MAJOR: u64 = 1;
/// Minor version of the record JSON format (additive extensions only).
pub const RECORD_FORMAT_MINOR: u64 = 0;

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// Write `text` to `path` atomically: write a `.tmp` sibling, fsync it,
/// rename it over `path`, then fsync the parent directory. A crash at any
/// point leaves either the old bytes, the new bytes, or a stale `.tmp`
/// sibling — never a torn file at the final path. This is the one write
/// primitive every store/artifact writer in the workspace goes through.
pub fn atomic_write(path: &Path, text: &str) -> std::io::Result<()> {
    use std::io::Write;
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| std::io::Error::other(format!("{}: no file name", path.display())))?;
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself; best-effort on filesystems that do
        // not support opening directories for sync.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// A recorded scenario run: scenario, named outputs (when the program
/// source declares I/O blocks), and the full report.
#[derive(Clone, Debug)]
pub struct ReportRecord {
    /// The scenario that ran (its digest is the record's address).
    pub scenario: Scenario,
    /// Final values of the program's declared output block — library
    /// workloads only; `None` for explicit programs and agreement mode.
    pub outputs: Option<Vec<u64>>,
    /// The full run report.
    pub report: ScenarioReport,
}

impl ReportRecord {
    /// Wrap an already-obtained report, deriving the named outputs from
    /// the scenario's I/O blocks (satellite of the suite subsystem: suites
    /// can assert program *results*, not just verifier cleanliness).
    pub fn from_run(scenario: Scenario, report: ScenarioReport) -> Self {
        let outputs = match (&report, scenario.io_blocks()) {
            (ScenarioReport::Scheme(r), Some((_, out))) => r
                .final_memory
                .get(out.base..out.base + out.len)
                .map(|s| s.to_vec()),
            _ => None,
        };
        ReportRecord {
            scenario,
            outputs,
            report,
        }
    }

    /// Validate, execute, and record `scenario` in one step.
    ///
    /// # Panics
    /// If the scenario is invalid or the run trips a stall budget (see
    /// [`Scenario::run`]).
    pub fn run(scenario: &Scenario) -> Self {
        Self::from_run(scenario.clone(), scenario.run())
    }

    /// [`ReportRecord::run`] with a runtime execution-engine override
    /// (see [`Scenario::run_with_exec`]): the recorded scenario and its
    /// digest are exactly as written — only the engine that produced the
    /// (engine-independent) report differs.
    pub fn run_exec(scenario: &Scenario, exec: Option<apex_exec::ExecMode>) -> Self {
        Self::run_engines(scenario, exec, None)
    }

    /// [`ReportRecord::run`] with runtime overrides for *both* engine
    /// knobs — `exec` for kernel scenarios, `engine` for scheme scenarios
    /// (see [`Scenario::run_with_engines`]). The recorded scenario and its
    /// digest are exactly as written either way.
    pub fn run_engines(
        scenario: &Scenario,
        exec: Option<apex_exec::ExecMode>,
        engine: Option<crate::scenario::ProgramEngine>,
    ) -> Self {
        Self::from_run(scenario.clone(), scenario.run_with_engines(exec, engine))
    }

    /// [`ReportRecord::run_exec`] with telemetry: routes trace events to
    /// `obs` and returns the engine's [`apex_exec::ExecStats`] alongside
    /// the record. The record bytes are identical to [`run_exec`]'s —
    /// telemetry observes the run, it never participates in it.
    ///
    /// [`run_exec`]: ReportRecord::run_exec
    pub fn run_exec_obs(
        scenario: &Scenario,
        exec: Option<apex_exec::ExecMode>,
        obs: &apex_obs::Obs,
    ) -> (Self, apex_exec::ExecStats) {
        Self::run_engines_obs(scenario, exec, None, obs)
    }

    /// [`ReportRecord::run_engines`] with telemetry (the fully general
    /// recorder; every other `run*` constructor delegates here).
    pub fn run_engines_obs(
        scenario: &Scenario,
        exec: Option<apex_exec::ExecMode>,
        engine: Option<crate::scenario::ProgramEngine>,
        obs: &apex_obs::Obs,
    ) -> (Self, apex_exec::ExecStats) {
        let (report, stats) = scenario.run_with_engines_obs(exec, engine, obs);
        (Self::from_run(scenario.clone(), report), stats)
    }

    /// The record's content address: [`Scenario::digest`] of its scenario.
    pub fn digest(&self) -> String {
        self.scenario.digest()
    }

    /// Whether the recorded run met its mode's correctness bar.
    pub fn ok(&self) -> bool {
        self.report.ok()
    }

    /// Serialize to the versioned record document (canonical field order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "version".into(),
                Json::Obj(vec![
                    ("major".into(), Json::UInt(RECORD_FORMAT_MAJOR)),
                    ("minor".into(), Json::UInt(RECORD_FORMAT_MINOR)),
                ]),
            ),
            ("digest".into(), Json::Str(self.digest())),
            ("scenario".into(), self.scenario.to_json()),
            (
                "outputs".into(),
                self.outputs.as_ref().map_or(Json::Null, |o| {
                    Json::Arr(o.iter().map(|x| Json::UInt(*x)).collect())
                }),
            ),
            ("report".into(), self.report.to_json()),
        ])
    }

    /// Deserialize a record document. Rejects unknown major versions and
    /// records whose stored digest does not match the embedded scenario
    /// (a hand-edited or corrupted artifact).
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = v
            .get("version")
            .map_err(|_| jerr("record document has no version field"))?;
        let major = version.get("major")?.as_u64()?;
        if major != RECORD_FORMAT_MAJOR {
            return Err(jerr(format!(
                "unsupported record format major version {major} (this build reads \
                 {RECORD_FORMAT_MAJOR})"
            )));
        }
        let record = ReportRecord {
            scenario: Scenario::from_json(v.get("scenario")?)?,
            outputs: match v.get("outputs")? {
                Json::Null => None,
                arr => Some(
                    arr.as_arr()?
                        .iter()
                        .map(Json::as_u64)
                        .collect::<Result<_, _>>()?,
                ),
            },
            report: ScenarioReport::from_json(v.get("report")?)?,
        };
        let stored = v.get("digest")?.as_str()?;
        let actual = record.digest();
        if stored != actual {
            return Err(jerr(format!(
                "record digest {stored:?} does not match its scenario (expected {actual:?})"
            )));
        }
        Ok(record)
    }

    /// Parse a complete record document.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// The canonical pretty-printed document — what the lab store writes,
    /// and what drift detection compares byte-for-byte.
    pub fn render_pretty(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Write the canonical document to `path` atomically
    /// (temp + fsync + rename; see [`atomic_write`]).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        atomic_write(path, &self.render_pretty())
    }

    /// Load and parse a record file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramSource;
    use crate::scenario::SourceSpec;
    use apex_scheme::SchemeKind;

    fn scheme_record() -> ReportRecord {
        ReportRecord::run(&Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::library("tree-reduce-max", 8, vec![3]),
            7,
        ))
    }

    #[test]
    fn record_round_trips_byte_identically() {
        for record in [
            scheme_record(),
            ReportRecord::run(&Scenario::agreement(8, SourceSpec::Random(100), 1, 3)),
        ] {
            let text = record.render_pretty();
            let back = ReportRecord::parse(&text).unwrap();
            assert_eq!(back.render_pretty(), text);
            assert_eq!(back.digest(), record.digest());
            assert_eq!(back.ok(), record.ok());
            assert_eq!(back.outputs, record.outputs);
        }
    }

    #[test]
    fn library_runs_carry_named_outputs() {
        use apex_pram::library::gen_values;
        let record = scheme_record();
        let outputs = record.outputs.as_ref().expect("library source declares IO");
        // tree-reduce-max writes the reduction into its (length-1) output
        // block; the scheme's final memory must contain the true maximum.
        let expect = gen_values(8, 3).iter().copied().fold(0, u64::max);
        assert_eq!(outputs, &vec![expect]);
        assert!(record.ok());
    }

    #[test]
    fn explicit_and_agreement_runs_have_no_outputs() {
        use apex_pram::library::coin_sum;
        let explicit = ReportRecord::run(&Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::Explicit(coin_sum(4, 8).program),
            1,
        ));
        assert_eq!(explicit.outputs, None);
        let agreement = ReportRecord::run(&Scenario::agreement(8, SourceSpec::Keyed, 1, 1));
        assert_eq!(agreement.outputs, None);
    }

    #[test]
    fn tampered_digest_and_unknown_major_are_rejected() {
        let record = scheme_record();
        let mut json = record.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[1].1 = Json::Str("0000000000000000".into());
        }
        let e = ReportRecord::from_json(&json).unwrap_err();
        assert!(e.msg.contains("digest"), "{e}");

        let mut json = record.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Obj(vec![
                ("major".into(), Json::UInt(RECORD_FORMAT_MAJOR + 1)),
                ("minor".into(), Json::UInt(0)),
            ]);
        }
        let e = ReportRecord::from_json(&json).unwrap_err();
        assert!(e.msg.contains("major version"), "{e}");
    }

    #[test]
    fn scenario_digest_is_stable_and_content_sensitive() {
        let a = Scenario::agreement(8, SourceSpec::Random(100), 1, 3);
        let b = Scenario::agreement(8, SourceSpec::Random(100), 1, 4);
        assert_eq!(a.digest(), a.clone().digest());
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest().len(), 16);
    }
}
