//! What a scenario run produces, and its stable JSON artifact form.
//!
//! The report codecs here make every run result a *recordable* document:
//! [`ScenarioReport::to_json`] round-trips exactly (all measured
//! quantities are integers, so nothing is squeezed through `f64`), which
//! is what lets the lab store content-address records and detect drift by
//! byte comparison.

use apex_core::validate::{BinCheck, TheoremOneReport};
use apex_core::PhaseOutcome;
use apex_exec::KernelReport;
use apex_pram::refexec::ReplayError;
use apex_scheme::{SchemeReport, VerifyReport};
use apex_sim::{Json, JsonError};

use crate::program::scheme_from_label;

/// Result of an agreement-mode scenario: the per-phase outcomes plus the
/// machine totals (the same shape every agreement experiment aggregates).
#[derive(Clone, Debug)]
pub struct AgreementRunReport {
    /// Outcome per phase, in order.
    pub outcomes: Vec<PhaseOutcome>,
    /// Machine ticks consumed by the whole run.
    pub ticks: u64,
    /// Stability violations accumulated across the run's phases.
    pub stability_violations: usize,
}

impl AgreementRunReport {
    /// Whether every phase completed and satisfied Theorem 1, with no
    /// stability violations.
    pub fn ok(&self) -> bool {
        self.stability_violations == 0
            && self
                .outcomes
                .iter()
                .all(|o| o.completion_work.is_some() && o.report.all_hold())
    }

    /// Serialize to the stable artifact form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "outcomes".into(),
                Json::Arr(self.outcomes.iter().map(phase_outcome_to_json).collect()),
            ),
            ("ticks".into(), Json::UInt(self.ticks)),
            (
                "stability_violations".into(),
                Json::UInt(self.stability_violations as u64),
            ),
        ])
    }

    /// Deserialize from the artifact form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(AgreementRunReport {
            outcomes: v
                .get("outcomes")?
                .as_arr()?
                .iter()
                .map(phase_outcome_from_json)
                .collect::<Result<_, _>>()?,
            ticks: v.get("ticks")?.as_u64()?,
            stability_violations: v.get("stability_violations")?.as_usize()?,
        })
    }
}

/// Result of [`Scenario::run`](crate::Scenario::run): one variant per mode.
#[derive(Clone, Debug)]
pub enum ScenarioReport {
    /// A scheme-mode run (program through an execution scheme + verifier).
    Scheme(SchemeReport),
    /// An agreement-mode run (raw protocol phases + Theorem-1 validators).
    Agreement(AgreementRunReport),
    /// A kernel-mode run (stress kernel under either execution engine;
    /// the report is engine-independent by the ticketed engine's
    /// byte-identity contract).
    Kernel(KernelReport),
}

impl ScenarioReport {
    /// Did the run meet its mode's correctness bar (verifier clean /
    /// Theorem 1 held every phase / kernel accounting consistent)?
    pub fn ok(&self) -> bool {
        match self {
            ScenarioReport::Scheme(r) => r.verify.ok(),
            ScenarioReport::Agreement(r) => r.ok(),
            ScenarioReport::Kernel(r) => r.ok(),
        }
    }

    /// The scheme report.
    ///
    /// # Panics
    /// If the scenario ran in another mode.
    pub fn scheme(&self) -> &SchemeReport {
        match self {
            ScenarioReport::Scheme(r) => r,
            _ => panic!("scenario did not run in scheme mode"),
        }
    }

    /// The scheme report, by value.
    ///
    /// # Panics
    /// If the scenario ran in another mode.
    pub fn into_scheme(self) -> SchemeReport {
        match self {
            ScenarioReport::Scheme(r) => r,
            _ => panic!("scenario did not run in scheme mode"),
        }
    }

    /// The agreement report.
    ///
    /// # Panics
    /// If the scenario ran in another mode.
    pub fn agreement(&self) -> &AgreementRunReport {
        match self {
            ScenarioReport::Agreement(r) => r,
            _ => panic!("scenario did not run in agreement mode"),
        }
    }

    /// The kernel report.
    ///
    /// # Panics
    /// If the scenario ran in another mode.
    pub fn kernel(&self) -> &KernelReport {
        match self {
            ScenarioReport::Kernel(r) => r,
            _ => panic!("scenario did not run in kernel mode"),
        }
    }

    /// Machine ticks the run consumed.
    pub fn ticks(&self) -> u64 {
        match self {
            ScenarioReport::Scheme(r) => r.ticks,
            ScenarioReport::Agreement(r) => r.ticks,
            ScenarioReport::Kernel(r) => r.ticks,
        }
    }

    /// Serialize to the stable, mode-tagged artifact form.
    pub fn to_json(&self) -> Json {
        match self {
            ScenarioReport::Scheme(r) => Json::Obj(vec![
                ("kind".into(), Json::Str("scheme".into())),
                ("scheme".into(), scheme_report_to_json(r)),
            ]),
            ScenarioReport::Agreement(r) => Json::Obj(vec![
                ("kind".into(), Json::Str("agreement".into())),
                ("agreement".into(), r.to_json()),
            ]),
            ScenarioReport::Kernel(r) => Json::Obj(vec![
                ("kind".into(), Json::Str("kernel".into())),
                ("kernel".into(), r.to_json()),
            ]),
        }
    }

    /// Deserialize from the artifact form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.get("kind")?.as_str()? {
            "scheme" => Ok(ScenarioReport::Scheme(scheme_report_from_json(
                v.get("scheme")?,
            )?)),
            "agreement" => Ok(ScenarioReport::Agreement(AgreementRunReport::from_json(
                v.get("agreement")?,
            )?)),
            "kernel" => Ok(ScenarioReport::Kernel(KernelReport::from_json(
                v.get("kernel")?,
            )?)),
            other => Err(jerr(format!("unknown report kind {other:?}"))),
        }
    }

    /// One-line human summary (the CLI's `run` output).
    pub fn summary(&self) -> String {
        match self {
            ScenarioReport::Scheme(r) => format!(
                "{} on {} ({} threads, {} steps): work {}, overhead {:.1}x, \
                 violations {} — {}",
                r.kind.label(),
                r.program,
                r.n,
                r.t_steps,
                r.total_work,
                r.overhead(),
                r.verify.violations(),
                if r.verify.ok() {
                    "consistent"
                } else {
                    "BROKEN"
                },
            ),
            ScenarioReport::Agreement(r) => format!(
                "agreement protocol: {} phases, {} ticks, {} stability violations — {}",
                r.outcomes.len(),
                r.ticks,
                r.stability_violations,
                if r.ok() { "Theorem 1 held" } else { "FAILED" },
            ),
            ScenarioReport::Kernel(r) => r.summary(),
        }
    }
}

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

fn u64_arr(xs: &[u64]) -> Json {
    Json::Arr(xs.iter().map(|x| Json::UInt(*x)).collect())
}

fn u64_arr_back(v: &Json) -> Result<Vec<u64>, JsonError> {
    v.as_arr()?.iter().map(Json::as_u64).collect()
}

fn opt_u64(x: Option<u64>) -> Json {
    x.map_or(Json::Null, Json::UInt)
}

fn opt_u64_back(v: &Json) -> Result<Option<u64>, JsonError> {
    match v {
        Json::Null => Ok(None),
        other => other.as_u64().map(Some),
    }
}

fn bool_back(v: &Json, what: &str) -> Result<bool, JsonError> {
    match v {
        Json::Bool(b) => Ok(*b),
        other => Err(jerr(format!("expected bool {what}, got {other:?}"))),
    }
}

/// Serialize a [`VerifyReport`] (including the typed replay error).
pub fn verify_report_to_json(r: &VerifyReport) -> Json {
    let replay_error = match &r.replay_error {
        None => Json::Null,
        Some(e) => {
            let (kind, step, thread) = match e {
                ReplayError::MissingChoice { step, thread } => ("missing-choice", *step, *thread),
                ReplayError::UnusedChoice { step, thread } => ("unused-choice", *step, *thread),
            };
            Json::Obj(vec![
                ("kind".into(), Json::Str(kind.into())),
                ("step".into(), Json::UInt(step)),
                ("thread".into(), Json::UInt(thread as u64)),
            ])
        }
    };
    Json::Obj(vec![
        (
            "replica_divergences".into(),
            Json::UInt(r.replica_divergences as u64),
        ),
        ("missing_values".into(), Json::UInt(r.missing_values as u64)),
        ("det_mismatches".into(), Json::UInt(r.det_mismatches as u64)),
        (
            "inadmissible_choices".into(),
            Json::UInt(r.inadmissible_choices as u64),
        ),
        (
            "final_mismatches".into(),
            Json::UInt(r.final_mismatches as u64),
        ),
        ("replay_error".into(), replay_error),
    ])
}

/// Deserialize a [`VerifyReport`].
pub fn verify_report_from_json(v: &Json) -> Result<VerifyReport, JsonError> {
    let replay_error = match v.get("replay_error")? {
        Json::Null => None,
        e => {
            let step = e.get("step")?.as_u64()?;
            let thread = e.get("thread")?.as_usize()?;
            Some(match e.get("kind")?.as_str()? {
                "missing-choice" => ReplayError::MissingChoice { step, thread },
                "unused-choice" => ReplayError::UnusedChoice { step, thread },
                other => return Err(jerr(format!("unknown replay error kind {other:?}"))),
            })
        }
    };
    Ok(VerifyReport {
        replica_divergences: v.get("replica_divergences")?.as_usize()?,
        missing_values: v.get("missing_values")?.as_usize()?,
        det_mismatches: v.get("det_mismatches")?.as_usize()?,
        inadmissible_choices: v.get("inadmissible_choices")?.as_usize()?,
        final_mismatches: v.get("final_mismatches")?.as_usize()?,
        replay_error,
    })
}

/// Serialize a [`SchemeReport`] — every measured quantity is an integer,
/// so the round-trip is exact.
pub fn scheme_report_to_json(r: &SchemeReport) -> Json {
    Json::Obj(vec![
        ("scheme".into(), Json::Str(r.kind.label().into())),
        ("schedule".into(), Json::Str(r.schedule.clone())),
        ("program".into(), Json::Str(r.program.clone())),
        ("n".into(), Json::UInt(r.n as u64)),
        ("t_steps".into(), Json::UInt(r.t_steps as u64)),
        ("total_work".into(), Json::UInt(r.total_work)),
        ("ticks".into(), Json::UInt(r.ticks)),
        ("subphase_work".into(), u64_arr(&r.subphase_work)),
        ("verify".into(), verify_report_to_json(&r.verify)),
        (
            "operand_read_failures".into(),
            Json::UInt(r.operand_read_failures),
        ),
        ("copy_writes".into(), Json::UInt(r.copy_writes)),
        ("aborted_copies".into(), Json::UInt(r.aborted_copies)),
        ("evals".into(), Json::UInt(r.evals)),
        ("final_memory".into(), u64_arr(&r.final_memory)),
    ])
}

/// Deserialize a [`SchemeReport`].
pub fn scheme_report_from_json(v: &Json) -> Result<SchemeReport, JsonError> {
    Ok(SchemeReport {
        kind: scheme_from_label(v.get("scheme")?.as_str()?)?,
        schedule: v.get("schedule")?.as_str()?.to_string(),
        program: v.get("program")?.as_str()?.to_string(),
        n: v.get("n")?.as_usize()?,
        t_steps: v.get("t_steps")?.as_usize()?,
        total_work: v.get("total_work")?.as_u64()?,
        ticks: v.get("ticks")?.as_u64()?,
        subphase_work: u64_arr_back(v.get("subphase_work")?)?,
        verify: verify_report_from_json(v.get("verify")?)?,
        operand_read_failures: v.get("operand_read_failures")?.as_u64()?,
        copy_writes: v.get("copy_writes")?.as_u64()?,
        aborted_copies: v.get("aborted_copies")?.as_u64()?,
        evals: v.get("evals")?.as_u64()?,
        final_memory: u64_arr_back(v.get("final_memory")?)?,
    })
}

fn bin_check_to_json(b: &BinCheck) -> Json {
    Json::Obj(vec![
        ("bin".into(), Json::UInt(b.bin as u64)),
        ("value".into(), opt_u64(b.value)),
        ("filled_upper".into(), Json::UInt(b.filled_upper as u64)),
        ("upper_cells".into(), Json::UInt(b.upper_cells as u64)),
        ("unique".into(), Json::Bool(b.unique)),
        ("accessible".into(), Json::Bool(b.accessible)),
        ("correct".into(), b.correct.map_or(Json::Null, Json::Bool)),
    ])
}

fn bin_check_from_json(v: &Json) -> Result<BinCheck, JsonError> {
    Ok(BinCheck {
        bin: v.get("bin")?.as_usize()?,
        value: opt_u64_back(v.get("value")?)?,
        filled_upper: v.get("filled_upper")?.as_usize()?,
        upper_cells: v.get("upper_cells")?.as_usize()?,
        unique: bool_back(v.get("unique")?, "unique")?,
        accessible: bool_back(v.get("accessible")?, "accessible")?,
        correct: match v.get("correct")? {
            Json::Null => None,
            other => Some(bool_back(other, "correct")?),
        },
    })
}

fn theorem_one_to_json(r: &TheoremOneReport) -> Json {
    Json::Obj(vec![
        ("phase".into(), Json::UInt(r.phase)),
        (
            "bins".into(),
            Json::Arr(r.bins.iter().map(bin_check_to_json).collect()),
        ),
    ])
}

fn theorem_one_from_json(v: &Json) -> Result<TheoremOneReport, JsonError> {
    Ok(TheoremOneReport {
        phase: v.get("phase")?.as_u64()?,
        bins: v
            .get("bins")?
            .as_arr()?
            .iter()
            .map(bin_check_from_json)
            .collect::<Result<_, _>>()?,
    })
}

fn phase_outcome_to_json(o: &PhaseOutcome) -> Json {
    Json::Obj(vec![
        ("phase".into(), Json::UInt(o.phase)),
        ("start_work".into(), Json::UInt(o.start_work)),
        ("completion_work".into(), opt_u64(o.completion_work)),
        ("advance_work".into(), Json::UInt(o.advance_work)),
        ("report".into(), theorem_one_to_json(&o.report)),
        (
            "clobbers".into(),
            o.clobbers.as_deref().map_or(Json::Null, u64_arr),
        ),
        (
            "stability_violations".into(),
            Json::UInt(o.stability_violations as u64),
        ),
        (
            "agreed".into(),
            Json::Arr(o.agreed.iter().map(|a| opt_u64(*a)).collect()),
        ),
    ])
}

fn phase_outcome_from_json(v: &Json) -> Result<PhaseOutcome, JsonError> {
    Ok(PhaseOutcome {
        phase: v.get("phase")?.as_u64()?,
        start_work: v.get("start_work")?.as_u64()?,
        completion_work: opt_u64_back(v.get("completion_work")?)?,
        advance_work: v.get("advance_work")?.as_u64()?,
        report: theorem_one_from_json(v.get("report")?)?,
        clobbers: match v.get("clobbers")? {
            Json::Null => None,
            other => Some(u64_arr_back(other)?),
        },
        stability_violations: v.get("stability_violations")?.as_usize()?,
        agreed: v
            .get("agreed")?
            .as_arr()?
            .iter()
            .map(opt_u64_back)
            .collect::<Result<_, _>>()?,
    })
}
