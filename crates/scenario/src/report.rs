//! What a scenario run produces.

use apex_core::PhaseOutcome;
use apex_scheme::SchemeReport;

/// Result of an agreement-mode scenario: the per-phase outcomes plus the
/// machine totals (the same shape every agreement experiment aggregates).
#[derive(Clone, Debug)]
pub struct AgreementRunReport {
    /// Outcome per phase, in order.
    pub outcomes: Vec<PhaseOutcome>,
    /// Machine ticks consumed by the whole run.
    pub ticks: u64,
    /// Stability violations accumulated across the run's phases.
    pub stability_violations: usize,
}

impl AgreementRunReport {
    /// Whether every phase completed and satisfied Theorem 1, with no
    /// stability violations.
    pub fn ok(&self) -> bool {
        self.stability_violations == 0
            && self
                .outcomes
                .iter()
                .all(|o| o.completion_work.is_some() && o.report.all_hold())
    }
}

/// Result of [`Scenario::run`](crate::Scenario::run): one variant per mode.
#[derive(Clone, Debug)]
pub enum ScenarioReport {
    /// A scheme-mode run (program through an execution scheme + verifier).
    Scheme(SchemeReport),
    /// An agreement-mode run (raw protocol phases + Theorem-1 validators).
    Agreement(AgreementRunReport),
}

impl ScenarioReport {
    /// Did the run meet its mode's correctness bar (verifier clean /
    /// Theorem 1 held every phase)?
    pub fn ok(&self) -> bool {
        match self {
            ScenarioReport::Scheme(r) => r.verify.ok(),
            ScenarioReport::Agreement(r) => r.ok(),
        }
    }

    /// The scheme report.
    ///
    /// # Panics
    /// If the scenario ran in agreement mode.
    pub fn scheme(&self) -> &SchemeReport {
        match self {
            ScenarioReport::Scheme(r) => r,
            ScenarioReport::Agreement(_) => panic!("scenario ran in agreement mode"),
        }
    }

    /// The scheme report, by value.
    ///
    /// # Panics
    /// If the scenario ran in agreement mode.
    pub fn into_scheme(self) -> SchemeReport {
        match self {
            ScenarioReport::Scheme(r) => r,
            ScenarioReport::Agreement(_) => panic!("scenario ran in agreement mode"),
        }
    }

    /// The agreement report.
    ///
    /// # Panics
    /// If the scenario ran in scheme mode.
    pub fn agreement(&self) -> &AgreementRunReport {
        match self {
            ScenarioReport::Agreement(r) => r,
            ScenarioReport::Scheme(_) => panic!("scenario ran in scheme mode"),
        }
    }

    /// Machine ticks the run consumed.
    pub fn ticks(&self) -> u64 {
        match self {
            ScenarioReport::Scheme(r) => r.ticks,
            ScenarioReport::Agreement(r) => r.ticks,
        }
    }

    /// One-line human summary (the CLI's `run` output).
    pub fn summary(&self) -> String {
        match self {
            ScenarioReport::Scheme(r) => format!(
                "{} on {} ({} threads, {} steps): work {}, overhead {:.1}x, \
                 violations {} — {}",
                r.kind.label(),
                r.program,
                r.n,
                r.t_steps,
                r.total_work,
                r.overhead(),
                r.verify.violations(),
                if r.verify.ok() {
                    "consistent"
                } else {
                    "BROKEN"
                },
            ),
            ScenarioReport::Agreement(r) => format!(
                "agreement protocol: {} phases, {} ticks, {} stability violations — {}",
                r.outcomes.len(),
                r.ticks,
                r.stability_violations,
                if r.ok() { "Theorem 1 held" } else { "FAILED" },
            ),
        }
    }
}
