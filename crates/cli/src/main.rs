//! `apex` — the workspace's single front door.
//!
//! ```text
//! apex suite run    SUITE.json [--store DIR] [--resume] [--cached] [--faults PLAN.json]
//!                   journaled expand-execute-record (crash-safe, resumable, memoizing)
//! apex suite expand SUITE.json                  print the deterministic cell list
//! apex drift        SUITE.json [--store DIR]    re-run and compare against the store
//! apex drift        --compare BASELINE CANDIDATE  byte-compare two stores
//! apex drift report BASELINE CANDIDATE          suite-by-suite divergence matrix
//! apex lab fsck     [--store DIR] [--repair]    integrity-scan the store
//! apex lab gc       [--store DIR] [--keep-last N] [--dry-run]  reclaim old suites
//! apex farm submit  SUITE.json [--queue DIR]    enqueue a suite for the workers
//! apex farm worker  [--queue DIR] [--store DIR] [--threads N] …  drain the queue
//! apex farm status  [--queue DIR] [--store DIR] per-suite queue progress
//! apex farm query   SCENARIO.json [--queue DIR] [--store DIR]  answer or enqueue
//! apex obs view     TRACE.jsonl [--scope S] …   summarize a trace file
//! apex obs metrics  [FILE] [--merge DIR]…       render / fleet-merge metrics
//! apex run          SCENARIO.json [--emit F] [--json]   execute one scenario
//! apex adversary    <validate|describe|gallery> …  lint/inspect adversary specs
//! apex synth        <gen|fuzz|shrink|replay|run|migrate|corpus-dedup> …
//! ```
//!
//! `suite`/`drift`/`lab` front [`apex_lab`]; `farm` fronts
//! [`apex_farm`]; `obs` fronts the [`apex_obs`] telemetry plane;
//! `adversary` fronts the [`apex_sim::AdversarySpec`] algebra; `run`
//! and `synth` delegate to [`apex_synth::cli`], so every entry point
//! in the workspace is reachable from one binary.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use apex_farm::{query, run_worker, FarmQueue, QueryAnswer, WorkerOpts};
use apex_lab::{
    check_against_store, compare_stores, fsck, gc, run_suite_journaled, BenchDoc, BenchRun,
    FaultInjector, FaultPlan, JournalOpts, LabStore, Suite,
};
use apex_obs::{read_trace, summarize, Metrics, Table};
use apex_scenario::Scenario;
use apex_sim::{AdversarySpec, Json};
use apex_synth::cli::{self, Args};

fn usage() -> ! {
    eprintln!(
        "usage: apex <suite|drift|lab|farm|obs|run|adversary|synth> …\n\
         \n\
         suite run    SUITE.json [--store DIR] [--resume] [--cached] [--faults PLAN.json]\n\
         \x20            [--threads N] [--exec serial|ticketed [--workers N]] [--timing]\n\
         \x20            [--engine tree|bytecode] [--trace [FILE]] [--metrics] [--profile]\n\
         \x20            [--bench OUT.json] [--bench-baseline BASE.json [--bench-tolerance F]]\n\
         \x20                                        journaled expand-execute-record\n\
         suite expand SUITE.json                 print the deterministic cell list\n\
         drift        SUITE.json [--store DIR]   re-run a suite, compare against the store\n\
         drift        --compare BASE CAND        byte-compare two stores\n\
         drift report BASE CAND                  suite-by-suite divergence matrix\n\
         lab fsck     [--store DIR] [--repair]   integrity-scan (--repair quarantines;\n\
         \x20                                        stale leases are reclaimed)\n\
         lab gc       [--store DIR] [--keep-last N] [--dry-run]  delete old suite dirs\n\
         farm submit  SUITE.json [--queue DIR]   enqueue a suite for the workers\n\
         farm worker  [--queue DIR] [--store DIR] [--threads N] [--worker ID]\n\
         \x20            [--shard N] [--ttl N] [--faults PLAN.json]\n\
         \x20            [--exec serial|ticketed [--workers N]] [--engine tree|bytecode]\n\
         \x20            [--trace [FILE]] [--metrics] [--profile]  drain the queue\n\
         farm status  [--queue DIR] [--store DIR] [--metrics]  per-suite queue progress\n\
         farm query   SCENARIO.json [--queue DIR] [--store DIR] [--json]\n\
         \x20                                        answer from cache, or enqueue\n\
         obs view     TRACE.jsonl [--scope S] [--kind K] [--label L] [--raw]\n\
         \x20                                        summarize (or dump) a trace file\n\
         obs metrics  [FILE] [--merge DIR]… [--result-plane] [--json]\n\
         \x20                                        render / fleet-merge metrics documents\n\
         run          SCENARIO.json [--emit OUT.json] [--json]\n\
         \x20            [--exec serial|ticketed [--workers N]] [--engine tree|bytecode]\n\
         \x20            [--trace [FILE]] [--metrics [FILE]] [--profile]\n\
         \x20                                        execute one scenario\n\
         adversary validate SPEC.json --n N      parse + validate a composed adversary\n\
         adversary describe SPEC.json --n N [--seed S]  compile and describe it\n\
         adversary gallery  [--n N]              print the composed-adversary gallery\n\
         synth        <subcommand> …             the apex-synth command set\n\
         \n\
         the default store is {:?}",
        apex_lab::DEFAULT_STORE_ROOT
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    match cmd.as_str() {
        "suite" => cmd_suite(&argv[1..]),
        "drift" => cmd_drift(&argv[1..]),
        "lab" => cmd_lab(&argv[1..]),
        "farm" => cmd_farm(&argv[1..]),
        "obs" => cmd_obs(&argv[1..]),
        "run" => cli::cmd_run(&argv[1..]),
        "adversary" => cmd_adversary(&argv[1..]),
        "synth" => cli::dispatch(&argv[1..]),
        _ => usage(),
    }
}

/// `apex adversary <validate|describe|gallery>` — author-side tooling for
/// the composable adversary algebra: lint a spec file against a machine
/// size, compile one and print its live description, or emit the standard
/// composed gallery as suite-ready JSON.
fn cmd_adversary(raw: &[String]) -> ExitCode {
    let Some(verb) = raw.first() else { usage() };
    let (file, rest) = positional(&raw[1..]);
    let args = Args::parse(rest);
    let n: usize = args.get("n").and_then(|v| v.parse().ok()).unwrap_or(8);
    let load = |file: &str| -> Result<AdversarySpec, String> {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let json = Json::parse(&text).map_err(|e| format!("{file}: {e}"))?;
        AdversarySpec::from_json(&json).map_err(|e| format!("{file}: {e}"))
    };
    match (verb.as_str(), file) {
        ("validate", Some(file)) => match load(&file).and_then(|spec| {
            spec.validate(n).map_err(|e| format!("{file}: {e}"))?;
            Ok(spec)
        }) {
            Ok(spec) => {
                println!(
                    "ok: {} (depth {}) is a valid adversary for n={n}",
                    spec.label(),
                    spec.depth()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        ("describe", Some(file)) => {
            let seed: u64 = args.get("seed").and_then(|v| v.parse().ok()).unwrap_or(0);
            match load(&file).and_then(|spec| {
                spec.validate(n).map_err(|e| format!("{file}: {e}"))?;
                Ok(spec)
            }) {
                Ok(spec) => {
                    let schedule = spec.build(n, seed);
                    println!("label:    {}", spec.label());
                    println!("depth:    {}", spec.depth());
                    println!("compiled: {}", schedule.describe());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        ("gallery", None) => {
            let specs = AdversarySpec::composed_gallery(n);
            let arr = Json::Arr(specs.iter().map(AdversarySpec::to_json).collect());
            println!("{}", arr.render_pretty());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

/// Split one positional argument (a file path) off an argv tail.
fn positional(raw: &[String]) -> (Option<String>, &[String]) {
    match raw.first() {
        Some(f) if !f.starts_with("--") => (Some(f.clone()), &raw[1..]),
        _ => (None, raw),
    }
}

fn load_suite(file: &str) -> Result<Suite, ExitCode> {
    let suite = Suite::load(Path::new(file)).map_err(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })?;
    suite.validate().map_err(|e| {
        eprintln!("{file}: {e}");
        ExitCode::FAILURE
    })?;
    Ok(suite)
}

fn store_from(args: &Args) -> LabStore {
    match args.get("store") {
        Some(dir) => LabStore::new(dir),
        None => LabStore::default_location(),
    }
}

fn cmd_suite(raw: &[String]) -> ExitCode {
    let Some(verb) = raw.first() else { usage() };
    let (file, rest) = positional(&raw[1..]);
    let args = Args::parse(rest);
    let Some(file) = file else { usage() };
    let suite = match load_suite(&file) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match verb.as_str() {
        "expand" => {
            let cells = suite.expand().expect("validated above");
            println!(
                "suite {:?} ({}) expands to {} cells:",
                suite.name,
                suite.digest(),
                cells.len()
            );
            for cell in &cells {
                println!(
                    "  [{:>4}] {} {}",
                    cell.index,
                    cell.digest,
                    one_line(&cell.scenario)
                );
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let mut store = store_from(&args);
            if let Some(plan_file) = args.get("faults") {
                // Deterministic fault injection — test/CI harness only.
                let plan = match FaultPlan::load(Path::new(plan_file)) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                store = store.with_faults(Arc::new(FaultInjector::new(plan)));
            }
            let benching = args.has("bench") || args.has("bench-baseline");
            // Bare `--trace` lands next to the suite's records.
            let trace_default = store.trace_path(&suite.digest());
            let opts = JournalOpts {
                resume: args.has("resume"),
                cached: args.has("cached"),
                threads: args.get("threads").and_then(|v| v.parse().ok()),
                exec: cli::exec_override(&args),
                engine: cli::engine_override(&args),
                timing: benching || args.has("timing"),
                obs: cli::obs_override(&args, || trace_default),
            };
            let done = match run_suite_journaled(&suite, &store, &opts) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let run = &done.run;
            println!(
                "suite {:?}: {} cells ({} resumed from store, {} executed), {} ok — records in {}",
                run.name,
                run.outcomes.len(),
                done.skipped.len(),
                done.executed.len(),
                run.ok_count(),
                store.suite_dir(&run.suite_digest).display()
            );
            println!(
                "  {} exhausted, {} poisoned",
                done.status_count("exhausted"),
                done.status_count("poisoned")
            );
            if opts.cached {
                println!("  {}", done.cache.summary());
            }
            if opts.timing {
                let exec = opts.exec.unwrap_or_default();
                println!(
                    "  {exec}: {} ticks in {} ms — {} ticks/s ({} windows, {} conflicts, {} serial reruns)",
                    done.executed_ticks,
                    done.elapsed_ms,
                    done.ticks_per_sec(),
                    done.exec.windows,
                    done.exec.conflicts,
                    done.exec.serial_reruns
                );
            }
            if let Some(trace) = &opts.obs.trace {
                println!("  trace: wrote {}", trace.display());
            }
            if !done.metrics.is_empty() {
                println!(
                    "  metrics: wrote {} ({})",
                    store.metrics_path(&run.suite_digest).display(),
                    done.metrics.summary()
                );
            }
            if benching {
                if let Err(e) = bench_gate(&args, &suite, &done) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            for cell in &done.manifest.cells {
                println!(
                    "  [{:>4}] {} {} {}",
                    cell.index,
                    if cell.ok { "ok  " } else { "FAIL" },
                    cell.digest,
                    cell.summary
                );
            }
            for mismatch in &run.output_mismatches {
                println!("  output assertion FAILED: {mismatch}");
            }
            if run.all_ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}

/// Fold this run's measured throughput into a `--bench` artifact and/or
/// gate it against a committed `--bench-baseline` document. Telemetry
/// only — nothing here touches the store's result bytes.
fn bench_gate(args: &Args, suite: &Suite, done: &apex_lab::JournaledRun) -> Result<(), String> {
    let exec = cli::exec_override(args).unwrap_or_default();
    let engine = cli::engine_override(args).unwrap_or_default();
    let fresh = BenchRun {
        exec: exec.label().into(),
        workers: exec.workers() as u64,
        engine: engine.label().into(),
        host_cores: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(0),
        cells: done.executed.len() as u64,
        ticks: done.executed_ticks,
        elapsed_ms: done.elapsed_ms,
        ticks_per_sec: done.ticks_per_sec(),
    };
    let digest = suite.digest();
    let mut doc = match args.get("bench") {
        Some(path) => BenchDoc::load_or_new(Path::new(path), &suite.name, &digest)?,
        None => BenchDoc::new(&suite.name, &digest),
    };
    doc.upsert(fresh);
    if exec.workers() > 1 {
        if let Some(speedup) = doc.speedup(exec.workers() as u64) {
            println!(
                "  speedup over serial at {} workers: {speedup:.2}x",
                exec.workers()
            );
        }
    }
    let engine_speedup = doc.engine_speedup(exec.label(), exec.workers() as u64);
    if let Some(speedup) = engine_speedup {
        println!(
            "  bytecode speedup over tree on the {} engine: {speedup:.2}x",
            exec.label()
        );
    }
    if let Some(min) = args.get("bench-min-engine-speedup") {
        let min: f64 = min
            .parse()
            .map_err(|e| format!("--bench-min-engine-speedup {min}: {e}"))?;
        // Host-independent gate: the tree/bytecode rows come from the same
        // machine and run back to back, so their ratio is meaningful even
        // when absolute throughput is not comparable to the baseline's.
        match engine_speedup {
            Some(s) if s >= min => {
                println!("  engine speedup gate: {s:.2}x >= {min:.2}x")
            }
            Some(s) => {
                return Err(format!(
                    "engine speedup gate failed: bytecode is {s:.2}x tree, need {min:.2}x"
                ))
            }
            None => {
                return Err(format!(
                    "engine speedup gate needs both a tree and a bytecode row for exec {} \
                     (workers {}) in the bench doc",
                    exec.label(),
                    exec.workers()
                ))
            }
        }
    }
    if let Some(path) = args.get("bench") {
        doc.save(Path::new(path))
            .map_err(|e| format!("{path}: {e}"))?;
        println!("  bench: wrote {path}");
    }
    if let Some(base_path) = args.get("bench-baseline") {
        let text = std::fs::read_to_string(base_path).map_err(|e| format!("{base_path}: {e}"))?;
        let baseline = BenchDoc::parse(&text).map_err(|e| format!("{base_path}: {e}"))?;
        if baseline.digest != digest {
            return Err(format!(
                "{base_path}: baseline measures suite {} but this run is suite {digest}",
                baseline.digest
            ));
        }
        let tolerance: f64 = args.num("bench-tolerance", 0.5);
        doc.gate_against(&baseline, tolerance)?;
        println!(
            "  bench gate vs {base_path}: ok (tolerance {:.0}%)",
            tolerance * 100.0
        );
    }
    Ok(())
}

fn cmd_drift(raw: &[String]) -> ExitCode {
    if raw.first().is_some_and(|a| a == "report") {
        // report BASELINE CANDIDATE: per-suite divergence matrix.
        let [base, cand] = &raw[1..] else { usage() };
        return drift_report_matrix(&LabStore::new(base), &LabStore::new(cand));
    }
    if raw.first().is_some_and(|a| a == "--compare") {
        // --compare BASELINE CANDIDATE: byte-compare two store roots.
        let [base, cand] = &raw[1..] else { usage() };
        let report = match compare_stores(&LabStore::new(base), &LabStore::new(cand)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", report.summary());
        return if report.clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    let (file, rest) = positional(raw);
    let args = Args::parse(rest);
    let Some(file) = file else { usage() };
    let suite = match load_suite(&file) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let report = match check_against_store(&suite, &store_from(&args)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", report.summary());
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `apex drift report BASE CAND` — the divergence matrix: one row per
/// suite (one version of the experiment grid), cell-divergence counts
/// as columns. Cells are compared byte-for-byte, records named by each
/// store's manifest (falling back to a directory scan when a manifest
/// is missing). Exit 0 iff every suite row is clean.
fn drift_report_matrix(base: &LabStore, cand: &LabStore) -> ExitCode {
    let digests = |s: &LabStore| s.suite_digests().unwrap_or_default();
    let mut suites = digests(base);
    for d in digests(cand) {
        if !suites.contains(&d) {
            suites.push(d);
        }
    }
    suites.sort();
    // Cells a store holds for a suite, preferring the manifest's list
    // (the run's own account of itself) over a raw directory scan.
    let cells_of = |s: &LabStore, suite: &str| -> Vec<String> {
        match s.read_manifest(suite) {
            Ok(m) => m.cells.iter().map(|c| c.digest.clone()).collect(),
            Err(_) => s.record_digests(suite).unwrap_or_default(),
        }
    };
    let mut table = Table::new(&[
        "suite",
        "cells",
        "identical",
        "differs",
        "missing",
        "extra",
        "verdict",
    ]);
    let mut clean = true;
    for suite in &suites {
        let base_cells = cells_of(base, suite);
        let cand_cells = cells_of(cand, suite);
        let (mut identical, mut differs, mut missing) = (0u64, 0u64, 0u64);
        for cell in &base_cells {
            let b = std::fs::read_to_string(base.record_path(suite, cell)).ok();
            let c = std::fs::read_to_string(cand.record_path(suite, cell)).ok();
            match (b, c) {
                (Some(b), Some(c)) if b == c => identical += 1,
                (Some(_), Some(_)) => differs += 1,
                _ => missing += 1,
            }
        }
        let extra = cand_cells
            .iter()
            .filter(|c| !base_cells.contains(c))
            .count() as u64;
        let ok = differs == 0 && missing == 0 && extra == 0;
        clean &= ok;
        table.row(&[
            suite.clone(),
            (base_cells.len() as u64 + extra).to_string(),
            identical.to_string(),
            differs.to_string(),
            missing.to_string(),
            extra.to_string(),
            (if ok { "ok" } else { "DRIFT" }).to_string(),
        ]);
    }
    if table.is_empty() {
        println!("drift report: no suites in either store");
        return ExitCode::SUCCESS;
    }
    print!("{}", table.render());
    println!(
        "drift report: {} suites, {}",
        suites.len(),
        if clean {
            "no divergence"
        } else {
            "DIVERGENCES"
        }
    );
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `apex lab <fsck|gc>` — store maintenance. `fsck` integrity-scans every
/// suite directory (exit 1 on any issue; `--repair` moves bad files to
/// `quarantine/`, never deletes); `gc` removes finished suite directories
/// beyond the `--keep-last N` newest (quarantine and in-flight suites are
/// never touched).
fn cmd_lab(raw: &[String]) -> ExitCode {
    let Some(verb) = raw.first() else { usage() };
    let args = Args::parse(&raw[1..]);
    let store = store_from(&args);
    match verb.as_str() {
        "fsck" => {
            let report = match fsck(&store, args.has("repair")) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{}", report.summary());
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "gc" => {
            let keep: usize = args.num("keep-last", 8);
            let report = match gc(&store, keep, args.has("dry-run")) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{}", report.summary());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

/// `apex farm <submit|worker|status|query>` — the memoizing campaign
/// farm. `submit` enqueues a suite document (content-addressed,
/// idempotent); `worker` drains the queue by leasing cell shards and
/// executing only cache misses; `status` surveys queue progress against
/// the store; `query` answers one scenario from verified store bytes or
/// enqueues it as a one-cell suite.
fn cmd_farm(raw: &[String]) -> ExitCode {
    let Some(verb) = raw.first() else { usage() };
    let (file, rest) = positional(&raw[1..]);
    let args = Args::parse(rest);
    let queue = match args.get("queue") {
        Some(dir) => FarmQueue::new(dir),
        None => FarmQueue::default_location(),
    };
    match (verb.as_str(), file) {
        ("submit", Some(file)) => {
            let suite = match load_suite(&file) {
                Ok(s) => s,
                Err(code) => return code,
            };
            match queue.submit(&suite) {
                Ok((digest, path, fresh)) => {
                    println!(
                        "{} suite {:?} ({digest}) at {}",
                        if fresh { "enqueued" } else { "already queued:" },
                        suite.name,
                        path.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{file}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ("worker", None) => {
            let mut store = store_from(&args);
            if let Some(plan_file) = args.get("faults") {
                // Deterministic fault injection — test/CI harness only.
                let plan = match FaultPlan::load(Path::new(plan_file)) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                store = store.with_faults(Arc::new(FaultInjector::new(plan)));
            }
            let mut opts = WorkerOpts::default();
            if let Some(id) = args.get("worker") {
                opts.worker = id.to_string();
            }
            opts.shard_cells = args.num("shard", opts.shard_cells);
            opts.ttl = args.num("ttl", opts.ttl);
            opts.threads = args.get("threads").and_then(|v| v.parse().ok());
            opts.exec = cli::exec_override(&args);
            opts.engine = cli::engine_override(&args);
            // Bare `--trace` lands beside the store, one file per worker
            // (a trace describes one worker's run, not the fleet's).
            let trace_default = store.root().join(format!("trace-{}.jsonl", opts.worker));
            opts.obs = cli::obs_override(&args, || trace_default);
            match run_worker(&queue, &store, &opts) {
                Ok(report) => {
                    println!("{}", report.summary());
                    for d in &report.divergences {
                        println!("  DIVERGENCE: {d}");
                    }
                    if report.divergences.is_empty() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("farm worker: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ("status", None) => {
            let store = store_from(&args);
            match queue.status(&store) {
                Ok(status) => {
                    println!("{}", status.summary());
                    if args.has("metrics") {
                        // Fold every metrics sidecar in the store — the
                        // serial `metrics.json` and per-worker
                        // `metrics-<id>.json` shards alike — into one
                        // fleet document.
                        match merge_metrics_under(store.root()) {
                            Ok((merged, files)) if files > 0 => {
                                println!("fleet metrics ({files} documents merged):");
                                print!("{}", render_metrics_tables(&merged));
                            }
                            Ok(_) => println!("fleet metrics: no metrics documents in store"),
                            Err(e) => {
                                eprintln!("farm status --metrics: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("farm status: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ("query", Some(file)) => {
            let scenario = match Scenario::load(Path::new(&file)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            match query(&store_from(&args), &queue, &scenario) {
                Ok(QueryAnswer::Hit {
                    suite,
                    text,
                    record,
                }) => {
                    if args.has("json") {
                        print!("{text}");
                    } else {
                        println!(
                            "hit: {} (cached under suite {suite}) — {}",
                            record.scenario.digest(),
                            if record.ok() { "ok" } else { "FAIL" }
                        );
                    }
                    ExitCode::SUCCESS
                }
                Ok(QueryAnswer::Enqueued {
                    suite_digest,
                    path,
                    fresh,
                }) => {
                    println!(
                        "miss: {} as one-cell suite {suite_digest} at {} — run `apex farm worker`",
                        if fresh {
                            "enqueued"
                        } else {
                            "already enqueued"
                        },
                        path.display()
                    );
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("{file}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// `apex obs <view|metrics>` — read-side tooling for the telemetry
/// plane. `view` replays and summarizes a JSONL trace (optionally
/// filtered by scope/kind/label, `--raw` dumps matching lines);
/// `metrics` renders one metrics document or fleet-merges many
/// (`--merge DIR` scans a store for every `metrics*.json`;
/// `--result-plane` projects onto the partition-independent subset).
fn cmd_obs(raw: &[String]) -> ExitCode {
    let Some(verb) = raw.first() else { usage() };
    let (file, rest) = positional(&raw[1..]);
    let args = Args::parse(rest);
    match verb.as_str() {
        "view" => {
            let Some(file) = file else { usage() };
            let log = match read_trace(Path::new(&file)) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let keep = |field: &str, flag: &str| -> bool {
                args.get(flag).is_none_or(|want| field == want)
            };
            let events: Vec<_> = log
                .events
                .into_iter()
                .filter(|e| {
                    keep(&e.scope, "scope") && keep(&e.kind, "kind") && keep(&e.label, "label")
                })
                .collect();
            if args.has("raw") {
                for e in &events {
                    println!("{}", e.to_line());
                }
            } else {
                print!("{}", summarize(&events).render());
                println!("{} events from {file}", events.len());
            }
            if log.torn_tail {
                eprintln!("warning: {file} has a torn final line (tolerated)");
            }
            ExitCode::SUCCESS
        }
        "metrics" => {
            let mut merged = Metrics::new();
            let mut files = 0usize;
            let result = (|| -> Result<(), String> {
                if let Some(file) = &file {
                    merged.merge(&Metrics::load(Path::new(file))?)?;
                    files += 1;
                }
                for dir in args.all("merge") {
                    let (doc, n) = merge_metrics_under(Path::new(dir))?;
                    if n == 0 {
                        return Err(format!("{dir}: no metrics*.json documents found"));
                    }
                    merged.merge(&doc)?;
                    files += n;
                }
                Ok(())
            })();
            if let Err(e) = result {
                eprintln!("obs metrics: {e}");
                return ExitCode::FAILURE;
            }
            if files == 0 {
                usage();
            }
            let doc = if args.has("result-plane") {
                merged.result_plane()
            } else {
                merged
            };
            if args.has("json") {
                println!("{}", doc.render_pretty());
            } else {
                println!("{} documents merged — {}", files, doc.summary());
                print!("{}", render_metrics_tables(&doc));
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

/// Merge every `metrics*.json` under `root` (recursively — a store
/// keeps one per suite directory, plus per-worker shards). Returns the
/// merged document and how many files contributed.
fn merge_metrics_under(root: &Path) -> Result<(Metrics, usize), String> {
    let mut merged = Metrics::new();
    let mut files = 0usize;
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        paths.sort();
        for path in paths {
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("metrics") && name.ends_with(".json") {
                merged
                    .merge(&Metrics::load(&path)?)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                files += 1;
            }
        }
    }
    Ok((merged, files))
}

/// Render a metrics document as counter/gauge/histogram tables.
fn render_metrics_tables(m: &Metrics) -> String {
    let mut out = String::new();
    let mut scalars = Table::new(&["instrument", "kind", "value"]);
    for (name, v) in m.counters() {
        scalars.row(&[name.to_string(), "counter".into(), v.to_string()]);
    }
    for (name, v) in m.gauges() {
        scalars.row(&[name.to_string(), "gauge".into(), v.to_string()]);
    }
    if !scalars.is_empty() {
        out.push_str(&scalars.render());
    }
    for (name, hist) in m.hists() {
        out.push('\n');
        out.push_str(&format!("{name} ({} observations):\n", hist.total()));
        let mut t = Table::new(&["bucket", "count"]);
        for (i, count) in hist.counts.iter().enumerate() {
            let bucket = match hist.bounds.get(i) {
                Some(b) => format!("<= {b}"),
                None => "overflow".to_string(),
            };
            t.row(&[bucket, count.to_string()]);
        }
        out.push_str(&t.render());
    }
    out
}

/// One-line scenario description for `suite expand` listings.
fn one_line(s: &apex_scenario::Scenario) -> String {
    use apex_scenario::{Mode, ProgramSource};
    match &s.mode {
        Mode::Scheme {
            scheme, program, ..
        } => {
            let prog = match program {
                ProgramSource::Library { name, n, .. } => format!("{name}(n={n})"),
                ProgramSource::Explicit(p) => format!("explicit {:?}", p.name),
            };
            format!(
                "{} {} schedule={} seed={}",
                scheme.label(),
                prog,
                s.schedule.to_json().render(),
                s.seed
            )
        }
        Mode::Agreement { n, phases, .. } => format!(
            "agreement n={n} phases={phases} schedule={} seed={}",
            s.schedule.to_json().render(),
            s.seed
        ),
        Mode::Kernel { kernel, n, ticks } => format!(
            "kernel {}(n={n}) ticks={ticks} exec={} seed={}",
            kernel.label(),
            s.engine.exec,
            s.seed
        ),
    }
}
