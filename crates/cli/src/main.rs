//! `apex` — the workspace's single front door.
//!
//! ```text
//! apex suite run    SUITE.json [--store DIR] [--resume] [--cached] [--faults PLAN.json]
//!                   journaled expand-execute-record (crash-safe, resumable, memoizing)
//! apex suite expand SUITE.json                  print the deterministic cell list
//! apex drift        SUITE.json [--store DIR]    re-run and compare against the store
//! apex drift        --compare BASELINE CANDIDATE  byte-compare two stores
//! apex lab fsck     [--store DIR] [--repair]    integrity-scan the store
//! apex lab gc       [--store DIR] [--keep-last N] [--dry-run]  reclaim old suites
//! apex farm submit  SUITE.json [--queue DIR]    enqueue a suite for the workers
//! apex farm worker  [--queue DIR] [--store DIR] [--threads N] …  drain the queue
//! apex farm status  [--queue DIR] [--store DIR] per-suite queue progress
//! apex farm query   SCENARIO.json [--queue DIR] [--store DIR]  answer or enqueue
//! apex run          SCENARIO.json [--emit F] [--json]   execute one scenario
//! apex adversary    <validate|describe|gallery> …  lint/inspect adversary specs
//! apex synth        <gen|fuzz|shrink|replay|run|migrate|corpus-dedup> …
//! ```
//!
//! `suite`/`drift`/`lab` front [`apex_lab`]; `farm` fronts
//! [`apex_farm`]; `adversary` fronts the [`apex_sim::AdversarySpec`]
//! algebra; `run` and `synth` delegate to [`apex_synth::cli`], so every
//! entry point in the workspace is reachable from one binary.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use apex_farm::{query, run_worker, FarmQueue, QueryAnswer, WorkerOpts};
use apex_lab::{
    check_against_store, compare_stores, fsck, gc, run_suite_journaled, BenchDoc, BenchRun,
    FaultInjector, FaultPlan, JournalOpts, LabStore, Suite,
};
use apex_scenario::Scenario;
use apex_sim::{AdversarySpec, Json};
use apex_synth::cli::{self, Args};

fn usage() -> ! {
    eprintln!(
        "usage: apex <suite|drift|lab|farm|run|adversary|synth> …\n\
         \n\
         suite run    SUITE.json [--store DIR] [--resume] [--cached] [--faults PLAN.json]\n\
         \x20            [--threads N] [--exec serial|ticketed [--workers N]] [--timing]\n\
         \x20            [--bench OUT.json] [--bench-baseline BASE.json [--bench-tolerance F]]\n\
         \x20                                        journaled expand-execute-record\n\
         suite expand SUITE.json                 print the deterministic cell list\n\
         drift        SUITE.json [--store DIR]   re-run a suite, compare against the store\n\
         drift        --compare BASE CAND        byte-compare two stores\n\
         lab fsck     [--store DIR] [--repair]   integrity-scan (--repair quarantines;\n\
         \x20                                        stale leases are reclaimed)\n\
         lab gc       [--store DIR] [--keep-last N] [--dry-run]  delete old suite dirs\n\
         farm submit  SUITE.json [--queue DIR]   enqueue a suite for the workers\n\
         farm worker  [--queue DIR] [--store DIR] [--threads N] [--worker ID]\n\
         \x20            [--shard N] [--ttl N] [--faults PLAN.json]\n\
         \x20            [--exec serial|ticketed [--workers N]]  drain the queue\n\
         farm status  [--queue DIR] [--store DIR]  per-suite queue progress\n\
         farm query   SCENARIO.json [--queue DIR] [--store DIR] [--json]\n\
         \x20                                        answer from cache, or enqueue\n\
         run          SCENARIO.json [--emit OUT.json] [--json]\n\
         \x20            [--exec serial|ticketed [--workers N]]  execute one scenario\n\
         adversary validate SPEC.json --n N      parse + validate a composed adversary\n\
         adversary describe SPEC.json --n N [--seed S]  compile and describe it\n\
         adversary gallery  [--n N]              print the composed-adversary gallery\n\
         synth        <subcommand> …             the apex-synth command set\n\
         \n\
         the default store is {:?}",
        apex_lab::DEFAULT_STORE_ROOT
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    match cmd.as_str() {
        "suite" => cmd_suite(&argv[1..]),
        "drift" => cmd_drift(&argv[1..]),
        "lab" => cmd_lab(&argv[1..]),
        "farm" => cmd_farm(&argv[1..]),
        "run" => cli::cmd_run(&argv[1..]),
        "adversary" => cmd_adversary(&argv[1..]),
        "synth" => cli::dispatch(&argv[1..]),
        _ => usage(),
    }
}

/// `apex adversary <validate|describe|gallery>` — author-side tooling for
/// the composable adversary algebra: lint a spec file against a machine
/// size, compile one and print its live description, or emit the standard
/// composed gallery as suite-ready JSON.
fn cmd_adversary(raw: &[String]) -> ExitCode {
    let Some(verb) = raw.first() else { usage() };
    let (file, rest) = positional(&raw[1..]);
    let args = Args::parse(rest);
    let n: usize = args.get("n").and_then(|v| v.parse().ok()).unwrap_or(8);
    let load = |file: &str| -> Result<AdversarySpec, String> {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let json = Json::parse(&text).map_err(|e| format!("{file}: {e}"))?;
        AdversarySpec::from_json(&json).map_err(|e| format!("{file}: {e}"))
    };
    match (verb.as_str(), file) {
        ("validate", Some(file)) => match load(&file).and_then(|spec| {
            spec.validate(n).map_err(|e| format!("{file}: {e}"))?;
            Ok(spec)
        }) {
            Ok(spec) => {
                println!(
                    "ok: {} (depth {}) is a valid adversary for n={n}",
                    spec.label(),
                    spec.depth()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        ("describe", Some(file)) => {
            let seed: u64 = args.get("seed").and_then(|v| v.parse().ok()).unwrap_or(0);
            match load(&file).and_then(|spec| {
                spec.validate(n).map_err(|e| format!("{file}: {e}"))?;
                Ok(spec)
            }) {
                Ok(spec) => {
                    let schedule = spec.build(n, seed);
                    println!("label:    {}", spec.label());
                    println!("depth:    {}", spec.depth());
                    println!("compiled: {}", schedule.describe());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        ("gallery", None) => {
            let specs = AdversarySpec::composed_gallery(n);
            let arr = Json::Arr(specs.iter().map(AdversarySpec::to_json).collect());
            println!("{}", arr.render_pretty());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

/// Split one positional argument (a file path) off an argv tail.
fn positional(raw: &[String]) -> (Option<String>, &[String]) {
    match raw.first() {
        Some(f) if !f.starts_with("--") => (Some(f.clone()), &raw[1..]),
        _ => (None, raw),
    }
}

fn load_suite(file: &str) -> Result<Suite, ExitCode> {
    let suite = Suite::load(Path::new(file)).map_err(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })?;
    suite.validate().map_err(|e| {
        eprintln!("{file}: {e}");
        ExitCode::FAILURE
    })?;
    Ok(suite)
}

fn store_from(args: &Args) -> LabStore {
    match args.get("store") {
        Some(dir) => LabStore::new(dir),
        None => LabStore::default_location(),
    }
}

fn cmd_suite(raw: &[String]) -> ExitCode {
    let Some(verb) = raw.first() else { usage() };
    let (file, rest) = positional(&raw[1..]);
    let args = Args::parse(rest);
    let Some(file) = file else { usage() };
    let suite = match load_suite(&file) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match verb.as_str() {
        "expand" => {
            let cells = suite.expand().expect("validated above");
            println!(
                "suite {:?} ({}) expands to {} cells:",
                suite.name,
                suite.digest(),
                cells.len()
            );
            for cell in &cells {
                println!(
                    "  [{:>4}] {} {}",
                    cell.index,
                    cell.digest,
                    one_line(&cell.scenario)
                );
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let mut store = store_from(&args);
            if let Some(plan_file) = args.get("faults") {
                // Deterministic fault injection — test/CI harness only.
                let plan = match FaultPlan::load(Path::new(plan_file)) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                store = store.with_faults(Arc::new(FaultInjector::new(plan)));
            }
            let benching = args.has("bench") || args.has("bench-baseline");
            let opts = JournalOpts {
                resume: args.has("resume"),
                cached: args.has("cached"),
                threads: args.get("threads").and_then(|v| v.parse().ok()),
                exec: cli::exec_override(&args),
                timing: benching || args.has("timing"),
            };
            let done = match run_suite_journaled(&suite, &store, &opts) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let run = &done.run;
            println!(
                "suite {:?}: {} cells ({} resumed from store, {} executed), {} ok — records in {}",
                run.name,
                run.outcomes.len(),
                done.skipped.len(),
                done.executed.len(),
                run.ok_count(),
                store.suite_dir(&run.suite_digest).display()
            );
            println!(
                "  {} exhausted, {} poisoned",
                done.status_count("exhausted"),
                done.status_count("poisoned")
            );
            if opts.cached {
                println!("  {}", done.cache.summary());
            }
            if opts.timing {
                let exec = opts.exec.unwrap_or_default();
                println!(
                    "  {exec}: {} ticks in {} ms — {} ticks/s",
                    done.executed_ticks,
                    done.elapsed_ms,
                    done.ticks_per_sec()
                );
            }
            if benching {
                if let Err(e) = bench_gate(&args, &suite, &done) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            for cell in &done.manifest.cells {
                println!(
                    "  [{:>4}] {} {} {}",
                    cell.index,
                    if cell.ok { "ok  " } else { "FAIL" },
                    cell.digest,
                    cell.summary
                );
            }
            for mismatch in &run.output_mismatches {
                println!("  output assertion FAILED: {mismatch}");
            }
            if run.all_ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}

/// Fold this run's measured throughput into a `--bench` artifact and/or
/// gate it against a committed `--bench-baseline` document. Telemetry
/// only — nothing here touches the store's result bytes.
fn bench_gate(args: &Args, suite: &Suite, done: &apex_lab::JournaledRun) -> Result<(), String> {
    let exec = cli::exec_override(args).unwrap_or_default();
    let fresh = BenchRun {
        exec: exec.label().into(),
        workers: exec.workers() as u64,
        cells: done.executed.len() as u64,
        ticks: done.executed_ticks,
        elapsed_ms: done.elapsed_ms,
        ticks_per_sec: done.ticks_per_sec(),
    };
    let digest = suite.digest();
    let mut doc = match args.get("bench") {
        Some(path) => BenchDoc::load_or_new(Path::new(path), &suite.name, &digest)?,
        None => BenchDoc::new(&suite.name, &digest),
    };
    doc.upsert(fresh);
    if exec.workers() > 1 {
        if let Some(speedup) = doc.speedup(exec.workers() as u64) {
            println!(
                "  speedup over serial at {} workers: {speedup:.2}x",
                exec.workers()
            );
        }
    }
    if let Some(path) = args.get("bench") {
        doc.save(Path::new(path))
            .map_err(|e| format!("{path}: {e}"))?;
        println!("  bench: wrote {path}");
    }
    if let Some(base_path) = args.get("bench-baseline") {
        let text = std::fs::read_to_string(base_path).map_err(|e| format!("{base_path}: {e}"))?;
        let baseline = BenchDoc::parse(&text).map_err(|e| format!("{base_path}: {e}"))?;
        if baseline.digest != digest {
            return Err(format!(
                "{base_path}: baseline measures suite {} but this run is suite {digest}",
                baseline.digest
            ));
        }
        let tolerance: f64 = args.num("bench-tolerance", 0.5);
        doc.gate_against(&baseline, tolerance)?;
        println!(
            "  bench gate vs {base_path}: ok (tolerance {:.0}%)",
            tolerance * 100.0
        );
    }
    Ok(())
}

fn cmd_drift(raw: &[String]) -> ExitCode {
    if raw.first().is_some_and(|a| a == "--compare") {
        // --compare BASELINE CANDIDATE: byte-compare two store roots.
        let [base, cand] = &raw[1..] else { usage() };
        let report = match compare_stores(&LabStore::new(base), &LabStore::new(cand)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", report.summary());
        return if report.clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    let (file, rest) = positional(raw);
    let args = Args::parse(rest);
    let Some(file) = file else { usage() };
    let suite = match load_suite(&file) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let report = match check_against_store(&suite, &store_from(&args)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", report.summary());
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `apex lab <fsck|gc>` — store maintenance. `fsck` integrity-scans every
/// suite directory (exit 1 on any issue; `--repair` moves bad files to
/// `quarantine/`, never deletes); `gc` removes finished suite directories
/// beyond the `--keep-last N` newest (quarantine and in-flight suites are
/// never touched).
fn cmd_lab(raw: &[String]) -> ExitCode {
    let Some(verb) = raw.first() else { usage() };
    let args = Args::parse(&raw[1..]);
    let store = store_from(&args);
    match verb.as_str() {
        "fsck" => {
            let report = match fsck(&store, args.has("repair")) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{}", report.summary());
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "gc" => {
            let keep: usize = args.num("keep-last", 8);
            let report = match gc(&store, keep, args.has("dry-run")) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{}", report.summary());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

/// `apex farm <submit|worker|status|query>` — the memoizing campaign
/// farm. `submit` enqueues a suite document (content-addressed,
/// idempotent); `worker` drains the queue by leasing cell shards and
/// executing only cache misses; `status` surveys queue progress against
/// the store; `query` answers one scenario from verified store bytes or
/// enqueues it as a one-cell suite.
fn cmd_farm(raw: &[String]) -> ExitCode {
    let Some(verb) = raw.first() else { usage() };
    let (file, rest) = positional(&raw[1..]);
    let args = Args::parse(rest);
    let queue = match args.get("queue") {
        Some(dir) => FarmQueue::new(dir),
        None => FarmQueue::default_location(),
    };
    match (verb.as_str(), file) {
        ("submit", Some(file)) => {
            let suite = match load_suite(&file) {
                Ok(s) => s,
                Err(code) => return code,
            };
            match queue.submit(&suite) {
                Ok((digest, path, fresh)) => {
                    println!(
                        "{} suite {:?} ({digest}) at {}",
                        if fresh { "enqueued" } else { "already queued:" },
                        suite.name,
                        path.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{file}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ("worker", None) => {
            let mut store = store_from(&args);
            if let Some(plan_file) = args.get("faults") {
                // Deterministic fault injection — test/CI harness only.
                let plan = match FaultPlan::load(Path::new(plan_file)) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                store = store.with_faults(Arc::new(FaultInjector::new(plan)));
            }
            let mut opts = WorkerOpts::default();
            if let Some(id) = args.get("worker") {
                opts.worker = id.to_string();
            }
            opts.shard_cells = args.num("shard", opts.shard_cells);
            opts.ttl = args.num("ttl", opts.ttl);
            opts.threads = args.get("threads").and_then(|v| v.parse().ok());
            opts.exec = cli::exec_override(&args);
            match run_worker(&queue, &store, &opts) {
                Ok(report) => {
                    println!("{}", report.summary());
                    for d in &report.divergences {
                        println!("  DIVERGENCE: {d}");
                    }
                    if report.divergences.is_empty() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("farm worker: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ("status", None) => match queue.status(&store_from(&args)) {
            Ok(status) => {
                println!("{}", status.summary());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("farm status: {e}");
                ExitCode::FAILURE
            }
        },
        ("query", Some(file)) => {
            let scenario = match Scenario::load(Path::new(&file)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            match query(&store_from(&args), &queue, &scenario) {
                Ok(QueryAnswer::Hit {
                    suite,
                    text,
                    record,
                }) => {
                    if args.has("json") {
                        print!("{text}");
                    } else {
                        println!(
                            "hit: {} (cached under suite {suite}) — {}",
                            record.scenario.digest(),
                            if record.ok() { "ok" } else { "FAIL" }
                        );
                    }
                    ExitCode::SUCCESS
                }
                Ok(QueryAnswer::Enqueued {
                    suite_digest,
                    path,
                    fresh,
                }) => {
                    println!(
                        "miss: {} as one-cell suite {suite_digest} at {} — run `apex farm worker`",
                        if fresh {
                            "enqueued"
                        } else {
                            "already enqueued"
                        },
                        path.display()
                    );
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("{file}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// One-line scenario description for `suite expand` listings.
fn one_line(s: &apex_scenario::Scenario) -> String {
    use apex_scenario::{Mode, ProgramSource};
    match &s.mode {
        Mode::Scheme {
            scheme, program, ..
        } => {
            let prog = match program {
                ProgramSource::Library { name, n, .. } => format!("{name}(n={n})"),
                ProgramSource::Explicit(p) => format!("explicit {:?}", p.name),
            };
            format!(
                "{} {} schedule={} seed={}",
                scheme.label(),
                prog,
                s.schedule.to_json().render(),
                s.seed
            )
        }
        Mode::Agreement { n, phases, .. } => format!(
            "agreement n={n} phases={phases} schedule={} seed={}",
            s.schedule.to_json().render(),
            s.seed
        ),
        Mode::Kernel { kernel, n, ticks } => format!(
            "kernel {}(n={n}) ticks={ticks} exec={} seed={}",
            kernel.label(),
            s.engine.exec,
            s.seed
        ),
    }
}
