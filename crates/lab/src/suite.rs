//! Scenario suites: whole experiments as one versioned JSON document.
//!
//! A [`Suite`] names a set of [`Scenario`]s two ways: an explicit `cells`
//! list, and `grids` — a base scenario crossed with axes (execution
//! schemes, machine sizes, adversaries, engine batch sizes, a seed range).
//! Expansion is **deterministic**: cells come first in document order,
//! then each grid in document order, each enumerated scheme-outermost /
//! seed-innermost (`scheme × n × schedule × batch × seed`, each axis in
//! document order).
//! The same document therefore always produces the same cell order and
//! the same cell digests, which is what lets the lab store content-address
//! results and `apex drift` treat any difference as a regression.

use apex_scenario::{Scenario, ScenarioError};
use apex_scheme::SchemeKind;
use apex_sim::{AdversarySpec, Json, JsonError};

use crate::digest_hex;

/// Major version of the suite JSON format (mismatches are rejected).
pub const SUITE_FORMAT_MAJOR: u64 = 1;
/// Minor version of the suite JSON format (additive extensions only).
///
/// The optional `expect` output-assertion list is additive and emitted
/// only when non-empty, and digests hash the canonical document — so
/// the version stanza stays untouched and every pre-existing suite
/// keeps its store address.
pub const SUITE_FORMAT_MINOR: u64 = 0;

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// An inclusive-start, length-counted seed range axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedRange {
    /// First seed.
    pub start: u64,
    /// Number of consecutive seeds.
    pub count: u64,
}

impl SeedRange {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("start".into(), Json::UInt(self.start)),
            ("count".into(), Json::UInt(self.count)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SeedRange {
            start: v.get("start")?.as_u64()?,
            count: v.get("count")?.as_u64()?,
        })
    }
}

/// A base scenario crossed with axes. An empty axis means "keep the base
/// scenario's value" (one implicit point), so a grid with all axes empty
/// expands to exactly its base.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid {
    /// The scenario every cell starts from.
    pub base: Scenario,
    /// Execution-scheme axis (scheme-mode bases only).
    pub schemes: Vec<SchemeKind>,
    /// Machine-size axis: overrides the library program's `n` (scheme
    /// mode) or the participant count (agreement mode).
    pub ns: Vec<usize>,
    /// Adversary axis: any specs of the composable algebra (legacy
    /// base kinds included).
    pub schedules: Vec<AdversarySpec>,
    /// Engine batch-size axis.
    pub batches: Vec<usize>,
    /// Seed-range axis; `None` keeps the base seed.
    pub seeds: Option<SeedRange>,
}

impl Grid {
    /// A grid with no axes (expands to the base scenario alone).
    pub fn new(base: Scenario) -> Self {
        Grid {
            base,
            schemes: Vec::new(),
            ns: Vec::new(),
            schedules: Vec::new(),
            batches: Vec::new(),
            seeds: None,
        }
    }

    /// Number of cells this grid expands to (0 for a zero-count seed
    /// range — the one way an axis can be genuinely empty rather than
    /// "use the base value").
    pub fn len(&self) -> usize {
        let axis = |l: usize| l.max(1);
        axis(self.schemes.len())
            * axis(self.ns.len())
            * axis(self.schedules.len())
            * axis(self.batches.len())
            * self.seeds.map_or(1, |r| r.count as usize)
    }

    /// Whether the grid expands to no cells (only possible via a
    /// zero-count seed range).
    pub fn is_empty(&self) -> bool {
        self.seeds.is_some_and(|r| r.count == 0)
    }

    /// Apply the axes to the base, scheme-outermost / seed-innermost:
    /// `scheme × n × schedule × batch × seed`, each axis in document
    /// order. Pushes the expanded scenarios onto `out`.
    fn expand_into(&self, out: &mut Vec<Scenario>) -> Result<(), String> {
        use apex_scenario::{Mode, ProgramSource};
        let one = |len: usize| 0..len.max(1);
        for si in one(self.schemes.len()) {
            for ni in one(self.ns.len()) {
                for ki in one(self.schedules.len()) {
                    for bi in one(self.batches.len()) {
                        // `start + i` for i < count cannot overflow once
                        // the *last* seed, `start + (count - 1)`, is known
                        // to fit — so a range may end exactly at u64::MAX.
                        let (start, count) = match self.seeds {
                            None => (self.base.seed, 1),
                            Some(r) => {
                                if r.count > 0 && r.start.checked_add(r.count - 1).is_none() {
                                    return Err(format!(
                                        "seed range {}+{} overflows u64",
                                        r.start, r.count
                                    ));
                                }
                                (r.start, r.count)
                            }
                        };
                        for i in 0..count {
                            let mut s = self.base.clone();
                            s.seed = start + i;
                            if let Some(kind) = self.schedules.get(ki) {
                                s.schedule = kind.clone();
                            }
                            if let Some(batch) = self.batches.get(bi) {
                                s.engine.batch = Some(*batch);
                            }
                            if let Some(scheme) = self.schemes.get(si) {
                                match &mut s.mode {
                                    Mode::Scheme { scheme: sch, .. } => *sch = *scheme,
                                    Mode::Agreement { .. } => {
                                        return Err(
                                            "scheme axis on an agreement-mode base".to_string()
                                        )
                                    }
                                    Mode::Kernel { .. } => {
                                        return Err("scheme axis on a kernel-mode base".to_string())
                                    }
                                }
                            }
                            if let Some(n) = self.ns.get(ni) {
                                match &mut s.mode {
                                    Mode::Agreement { n: base_n, .. } => *base_n = *n,
                                    Mode::Kernel { n: base_n, .. } => *base_n = *n,
                                    Mode::Scheme { program, .. } => match program {
                                        ProgramSource::Library { n: base_n, .. } => *base_n = *n,
                                        ProgramSource::Explicit(_) => {
                                            return Err("n axis on an explicit program (library \
                                                        sources only)"
                                                .to_string())
                                        }
                                    },
                                }
                            }
                            out.push(s);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("base".into(), self.base.to_json()),
            (
                "schemes".into(),
                Json::Arr(
                    self.schemes
                        .iter()
                        .map(|s| Json::Str(s.label().into()))
                        .collect(),
                ),
            ),
            (
                "ns".into(),
                Json::Arr(self.ns.iter().map(|n| Json::UInt(*n as u64)).collect()),
            ),
            (
                "schedules".into(),
                Json::Arr(self.schedules.iter().map(AdversarySpec::to_json).collect()),
            ),
            (
                "batches".into(),
                Json::Arr(self.batches.iter().map(|b| Json::UInt(*b as u64)).collect()),
            ),
            (
                "seeds".into(),
                self.seeds.map_or(Json::Null, SeedRange::to_json),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let arr = |key: &str| -> Result<Vec<Json>, JsonError> {
            match v.get_opt(key) {
                None | Some(Json::Null) => Ok(Vec::new()),
                Some(a) => Ok(a.as_arr()?.to_vec()),
            }
        };
        Ok(Grid {
            base: Scenario::from_json(v.get("base")?)?,
            schemes: arr("schemes")?
                .iter()
                .map(|s| apex_scenario::scheme_from_label(s.as_str()?))
                .collect::<Result<_, _>>()?,
            ns: arr("ns")?
                .iter()
                .map(Json::as_usize)
                .collect::<Result<_, _>>()?,
            schedules: arr("schedules")?
                .iter()
                .map(AdversarySpec::from_json)
                .collect::<Result<_, _>>()?,
            batches: arr("batches")?
                .iter()
                .map(Json::as_usize)
                .collect::<Result<_, _>>()?,
            seeds: match v.get_opt("seeds") {
                None | Some(Json::Null) => None,
                Some(r) => Some(SeedRange::from_json(r)?),
            },
        })
    }
}

/// A pinned result: the cell named by `cell` (a [`Scenario::digest`])
/// must produce exactly `outputs` as its named output-block values
/// ([`ReportRecord::outputs`](apex_scenario::ReportRecord)). This makes a
/// suite fail on wrong *results* even when the run's verifier is clean —
/// the check is on what the program computed, not on how it ran.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputExpectation {
    /// Digest of the cell's scenario (stable under grid re-ordering).
    pub cell: String,
    /// Expected output-block values, in block order.
    pub outputs: Vec<u64>,
}

impl OutputExpectation {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cell".into(), Json::Str(self.cell.clone())),
            (
                "outputs".into(),
                Json::Arr(self.outputs.iter().map(|v| Json::UInt(*v)).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(OutputExpectation {
            cell: v.get("cell")?.as_str()?.to_string(),
            outputs: v
                .get("outputs")?
                .as_arr()?
                .iter()
                .map(Json::as_u64)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// One expanded point of a suite: its position, its scenario, and the
/// scenario's content digest (the record address in the lab store).
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Position in the suite's deterministic expansion order.
    pub index: usize,
    /// The fully-specified scenario.
    pub scenario: Scenario,
    /// [`Scenario::digest`] of the scenario.
    pub digest: String,
}

/// A versioned, shareable experiment: explicit cells plus grids, expanded
/// deterministically into [`Cell`]s.
#[derive(Clone, Debug, PartialEq)]
pub struct Suite {
    /// Suite name (lower-case `[a-z0-9._-]`; names the store directory in
    /// manifests and reports).
    pub name: String,
    /// Explicit scenarios, expanded first in document order.
    pub cells: Vec<Scenario>,
    /// Grids, expanded after the explicit cells, in document order.
    pub grids: Vec<Grid>,
    /// Output assertions: cells (by scenario digest) whose named outputs
    /// are pinned. `suite run` fails when a pinned cell's outputs differ.
    pub expect: Vec<OutputExpectation>,
}

impl Suite {
    /// An empty suite.
    pub fn new(name: impl Into<String>) -> Self {
        Suite {
            name: name.into(),
            cells: Vec::new(),
            grids: Vec::new(),
            expect: Vec::new(),
        }
    }

    /// Content digest of the canonical compact suite document (16 hex
    /// digits of FNV-1a) — the suite's directory name in the lab store.
    pub fn digest(&self) -> String {
        digest_hex(self.to_json().render().as_bytes())
    }

    /// Check the document is well-formed: a filesystem-safe name, every
    /// expanded scenario valid, and no two cells sharing a digest (they
    /// would collide at one store address).
    pub fn validate(&self) -> Result<(), String> {
        self.expand().map(|_| ())
    }

    /// Expand to the deterministic cell list, validating every scenario.
    pub fn expand(&self) -> Result<Vec<Cell>, String> {
        if self.name.is_empty()
            || !self
                .name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b"._-".contains(&b))
        {
            return Err(format!(
                "suite name {:?} must be non-empty lower-case [a-z0-9._-]",
                self.name
            ));
        }
        let mut scenarios = self.cells.clone();
        for (gi, grid) in self.grids.iter().enumerate() {
            grid.expand_into(&mut scenarios)
                .map_err(|e| format!("suite {:?} grid {gi}: {e}", self.name))?;
        }
        if scenarios.is_empty() {
            return Err(format!("suite {:?} expands to no cells", self.name));
        }
        let mut cells = Vec::with_capacity(scenarios.len());
        let mut seen: std::collections::HashMap<String, usize> = Default::default();
        for (index, scenario) in scenarios.into_iter().enumerate() {
            scenario
                .validate()
                .map_err(|e: ScenarioError| format!("suite {:?} cell {index}: {e}", self.name))?;
            let digest = scenario.digest();
            if let Some(prev) = seen.insert(digest.clone(), index) {
                return Err(format!(
                    "suite {:?}: cells {prev} and {index} are identical (digest {digest}); \
                     each cell must name a distinct scenario",
                    self.name
                ));
            }
            cells.push(Cell {
                index,
                scenario,
                digest,
            });
        }
        // Output assertions must name expanded cells (by digest, exactly
        // once each) that actually declare named outputs.
        let mut pinned: std::collections::HashSet<&str> = Default::default();
        for (ei, expect) in self.expect.iter().enumerate() {
            if !pinned.insert(&expect.cell) {
                return Err(format!(
                    "suite {:?}: expectation {ei} pins cell {} twice",
                    self.name, expect.cell
                ));
            }
            let Some(cell) = cells.iter().find(|c| c.digest == expect.cell) else {
                return Err(format!(
                    "suite {:?}: expectation {ei} names cell {}, which no cell expands to",
                    self.name, expect.cell
                ));
            };
            if cell.scenario.io_blocks().is_none() {
                return Err(format!(
                    "suite {:?}: expectation {ei} pins cell {} (index {}), whose scenario \
                     declares no named outputs (library scheme-mode sources only)",
                    self.name, expect.cell, cell.index
                ));
            }
        }
        Ok(cells)
    }

    /// Serialize to the versioned suite document (canonical field order;
    /// all axes rendered explicitly so the canonical form is unique —
    /// except `expect`, emitted only when non-empty so expectation-free
    /// documents keep their canonical bytes and digests).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "version".to_string(),
                Json::Obj(vec![
                    ("major".into(), Json::UInt(SUITE_FORMAT_MAJOR)),
                    ("minor".into(), Json::UInt(SUITE_FORMAT_MINOR)),
                ]),
            ),
            ("name".to_string(), Json::Str(self.name.clone())),
            (
                "cells".to_string(),
                Json::Arr(self.cells.iter().map(Scenario::to_json).collect()),
            ),
            (
                "grids".to_string(),
                Json::Arr(self.grids.iter().map(Grid::to_json).collect()),
            ),
        ];
        if !self.expect.is_empty() {
            fields.push((
                "expect".to_string(),
                Json::Arr(self.expect.iter().map(OutputExpectation::to_json).collect()),
            ));
        }
        Json::Obj(fields)
    }

    /// Deserialize a suite document (rejects unknown major versions;
    /// structural errors only — call [`Suite::validate`] before running).
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = v
            .get("version")
            .map_err(|_| jerr("suite document has no version field"))?;
        let major = version.get("major")?.as_u64()?;
        if major != SUITE_FORMAT_MAJOR {
            return Err(jerr(format!(
                "unsupported suite format major version {major} (this build reads \
                 {SUITE_FORMAT_MAJOR})"
            )));
        }
        let arr = |key: &str| -> Result<Vec<Json>, JsonError> {
            match v.get_opt(key) {
                None | Some(Json::Null) => Ok(Vec::new()),
                Some(a) => Ok(a.as_arr()?.to_vec()),
            }
        };
        Ok(Suite {
            name: v.get("name")?.as_str()?.to_string(),
            cells: arr("cells")?
                .iter()
                .map(Scenario::from_json)
                .collect::<Result<_, _>>()?,
            grids: arr("grids")?
                .iter()
                .map(Grid::from_json)
                .collect::<Result<_, _>>()?,
            expect: arr("expect")?
                .iter()
                .map(OutputExpectation::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Parse a complete suite document.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// The canonical pretty-printed document.
    pub fn render_pretty(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Write the canonical document to `path` atomically
    /// (temp + fsync + rename).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        apex_scenario::atomic_write(path, &self.render_pretty())
    }

    /// Load and parse a suite file.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_scenario::{ProgramSource, SourceSpec};
    use apex_sim::ScheduleKind;

    fn scheme_base() -> Scenario {
        Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::library("tree-reduce-max", 8, vec![3]),
            1,
        )
    }

    fn demo_suite() -> Suite {
        let mut suite = Suite::new("demo");
        suite
            .cells
            .push(Scenario::agreement(8, SourceSpec::Keyed, 1, 42));
        let mut grid = Grid::new(scheme_base());
        grid.schemes = vec![SchemeKind::Nondet, SchemeKind::DetBaseline];
        grid.schedules = vec![
            ScheduleKind::Uniform.into(),
            ScheduleKind::Bursty { mean_burst: 8 }.into(),
        ];
        grid.seeds = Some(SeedRange { start: 1, count: 3 });
        suite.grids.push(grid);
        suite
    }

    #[test]
    fn expansion_is_deterministic_and_scheme_outermost() {
        let suite = demo_suite();
        let cells = suite.expand().unwrap();
        assert_eq!(cells.len(), 1 + 2 * 2 * 3);
        let again = suite.expand().unwrap();
        assert_eq!(cells, again);
        // Cell 0 is the explicit cell; the grid follows scheme-outermost,
        // seed-innermost.
        use apex_scenario::Mode;
        let scheme_of = |c: &Cell| match &c.scenario.mode {
            Mode::Scheme { scheme, .. } => *scheme,
            _ => panic!("grid cells are scheme-mode"),
        };
        assert!(matches!(cells[0].scenario.mode, Mode::Agreement { .. }));
        assert_eq!(scheme_of(&cells[1]), SchemeKind::Nondet);
        assert_eq!(scheme_of(&cells[7]), SchemeKind::DetBaseline);
        assert_eq!(cells[1].scenario.seed, 1);
        assert_eq!(cells[2].scenario.seed, 2);
        assert_eq!(cells[3].scenario.seed, 3);
        assert_eq!(
            cells[4].scenario.schedule,
            ScheduleKind::Bursty { mean_burst: 8 }.into()
        );
        // Digests are pairwise distinct.
        let mut digests: Vec<_> = cells.iter().map(|c| c.digest.clone()).collect();
        digests.sort();
        digests.dedup();
        assert_eq!(digests.len(), cells.len());
    }

    #[test]
    fn suite_round_trips_exactly() {
        let suite = demo_suite();
        let back = Suite::parse(&suite.render_pretty()).unwrap();
        assert_eq!(back, suite);
        assert_eq!(back.digest(), suite.digest());
        let compact = Suite::parse(&suite.to_json().render()).unwrap();
        assert_eq!(compact, suite);
    }

    #[test]
    fn ill_formed_suites_are_rejected() {
        // Bad name.
        let mut bad = demo_suite();
        bad.name = "Has Spaces".into();
        assert!(bad.expand().is_err());

        // Duplicate cells collide at one store address.
        let mut dup = Suite::new("dup");
        let cell = Scenario::agreement(8, SourceSpec::Keyed, 1, 42);
        dup.cells.push(cell.clone());
        dup.cells.push(cell);
        let e = dup.expand().unwrap_err();
        assert!(e.contains("identical"), "{e}");

        // Scheme axis on an agreement base.
        let mut ag = Suite::new("ag");
        let mut grid = Grid::new(Scenario::agreement(8, SourceSpec::Keyed, 1, 1));
        grid.schemes = vec![SchemeKind::Nondet];
        ag.grids.push(grid);
        assert!(ag.expand().unwrap_err().contains("agreement-mode"));

        // n axis on an explicit program.
        use apex_pram::library::coin_sum;
        let mut ex = Suite::new("ex");
        let mut grid = Grid::new(Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::Explicit(coin_sum(4, 8).program),
            1,
        ));
        grid.ns = vec![4, 8];
        ex.grids.push(grid);
        assert!(ex.expand().unwrap_err().contains("explicit"));

        // Empty suites expand to nothing.
        assert!(Suite::new("empty").expand().is_err());

        // Invalid expanded scenarios are caught with their cell index.
        let mut invalid = Suite::new("invalid");
        let mut grid = Grid::new(scheme_base());
        grid.ns = vec![6]; // not a power of two
        invalid.grids.push(grid);
        assert!(invalid.expand().unwrap_err().contains("cell 0"));
    }

    #[test]
    fn output_expectations_validate_and_round_trip() {
        // A suite with a pinned output: tree-reduce-max over n=8 params=[3].
        let mut suite = Suite::new("haspin");
        let cell = scheme_base();
        let digest = cell.digest();
        suite.cells.push(cell);
        suite.expect.push(OutputExpectation {
            cell: digest.clone(),
            outputs: vec![42],
        });
        suite.validate().unwrap();
        // Round-trips exactly, and the `expect` field is emitted.
        let back = Suite::parse(&suite.render_pretty()).unwrap();
        assert_eq!(back, suite);
        assert!(suite.to_json().render().contains("\"expect\":"));
        // An expectation-free suite's canonical form has no expect field,
        // so pre-1.1 documents keep their digests.
        let mut bare = suite.clone();
        bare.expect.clear();
        assert!(!bare.to_json().render().contains("\"expect\":"));

        // Unknown digests are rejected with the expectation index.
        let mut dangling = suite.clone();
        dangling.expect[0].cell = "feedfacefeedface".into();
        assert!(dangling.validate().unwrap_err().contains("expectation 0"));

        // Pinning one cell twice is rejected.
        let mut twice = suite.clone();
        twice.expect.push(OutputExpectation {
            cell: digest,
            outputs: vec![7],
        });
        assert!(twice.validate().unwrap_err().contains("twice"));

        // Pinning a cell with no named outputs is rejected.
        let mut ag = Suite::new("ag");
        let cell = Scenario::agreement(8, SourceSpec::Keyed, 1, 42);
        let digest = cell.digest();
        ag.cells.push(cell);
        ag.expect.push(OutputExpectation {
            cell: digest,
            outputs: vec![1],
        });
        assert!(ag.validate().unwrap_err().contains("no named outputs"));
    }

    #[test]
    fn n_axis_applies_to_both_modes() {
        use apex_scenario::Mode;
        let mut suite = Suite::new("ns");
        let mut g1 = Grid::new(scheme_base());
        g1.ns = vec![4, 8];
        suite.grids.push(g1);
        let mut g2 = Grid::new(Scenario::agreement(8, SourceSpec::Keyed, 1, 5));
        g2.ns = vec![4, 16];
        suite.grids.push(g2);
        let cells = suite.expand().unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].scenario.n(), 4);
        assert_eq!(cells[1].scenario.n(), 8);
        assert!(matches!(cells[2].scenario.mode, Mode::Agreement { .. }));
        assert_eq!(cells[2].scenario.n(), 4);
        assert_eq!(cells[3].scenario.n(), 16);
    }

    #[test]
    fn kernel_grids_expand_over_n_and_reject_the_scheme_axis() {
        use apex_scenario::{KernelSpec, Mode, Scenario};
        let base = Scenario::kernel(KernelSpec::PrivateSlots { slots: 8 }, 8, 4096, 1);
        let mut suite = Suite::new("kern");
        let mut grid = Grid::new(base.clone());
        grid.ns = vec![8, 64];
        grid.seeds = Some(SeedRange { start: 1, count: 2 });
        suite.grids.push(grid);
        let cells = suite.expand().unwrap();
        assert_eq!(cells.len(), 4);
        assert!(matches!(cells[0].scenario.mode, Mode::Kernel { .. }));
        assert_eq!(cells[0].scenario.n(), 8);
        assert_eq!(cells[2].scenario.n(), 64);

        let mut bad = Suite::new("kern-bad");
        let mut grid = Grid::new(base);
        grid.schemes = vec![SchemeKind::Nondet];
        bad.grids.push(grid);
        assert!(bad.expand().unwrap_err().contains("kernel-mode"));
    }

    #[test]
    fn seed_axis_edge_cases() {
        // A zero-count seed range is the one genuinely empty axis:
        // len/is_empty agree, and a suite of only-empty grids is rejected.
        let mut grid = Grid::new(scheme_base());
        grid.schedules = vec![
            ScheduleKind::Uniform.into(),
            ScheduleKind::RoundRobin.into(),
        ];
        grid.seeds = Some(SeedRange { start: 1, count: 0 });
        assert_eq!(grid.len(), 0);
        assert!(grid.is_empty());
        let mut suite = Suite::new("zero");
        suite.grids.push(grid);
        assert!(suite.expand().unwrap_err().contains("no cells"));

        // A base seed of u64::MAX with no seeds axis must not overflow.
        let mut base = scheme_base();
        base.seed = u64::MAX;
        let mut suite = Suite::new("maxseed");
        suite.grids.push(Grid::new(base));
        let cells = suite.expand().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].scenario.seed, u64::MAX);

        // A seed range ending exactly at u64::MAX is fine; one past it is
        // a clean error, not a wrap.
        let mut grid = Grid::new(scheme_base());
        grid.seeds = Some(SeedRange {
            start: u64::MAX - 1,
            count: 2,
        });
        let mut suite = Suite::new("maxrange");
        suite.grids.push(grid.clone());
        assert_eq!(suite.expand().unwrap().len(), 2);
        grid.seeds = Some(SeedRange {
            start: u64::MAX,
            count: 2,
        });
        let mut suite = Suite::new("overflow");
        suite.grids.push(grid);
        assert!(suite.expand().unwrap_err().contains("overflows"));
    }

    #[test]
    fn unknown_major_version_is_rejected() {
        let mut json = demo_suite().to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Obj(vec![
                ("major".into(), Json::UInt(SUITE_FORMAT_MAJOR + 1)),
                ("minor".into(), Json::UInt(0)),
            ]);
        }
        let e = Suite::from_json(&json).unwrap_err();
        assert!(e.msg.contains("major version"), "{e}");
    }
}
