//! # apex-lab — scenario suites, the lab results store, drift detection
//!
//! The rest of the workspace makes every run a declarative, serializable
//! [`Scenario`](apex_scenario::Scenario); this crate makes whole
//! *experiments* first-class and their *results* durable:
//!
//! * [`Suite`] — a versioned JSON document naming a list and/or grid of
//!   scenarios (axes over schemes, sizes, adversaries, engine batches and
//!   seed ranges), expanded deterministically into content-digested
//!   [`Cell`]s;
//! * [`run_suite`] — execute every cell on the workspace's parallel trial
//!   runner, producing one [`ReportRecord`](apex_scenario::ReportRecord)
//!   per cell;
//! * [`LabStore`] — a filesystem-backed, content-addressed results store
//!   (`.apex/lab/<suite-digest>/<cell-digest>.json` plus a deterministic
//!   manifest — no timestamps, no database, diffable by hand);
//! * [`check_against_store`] / [`compare_stores`] — drift detection: the
//!   stored run is ground truth, the pipeline is deterministic end to
//!   end, so *any* byte difference on re-execution is a real regression
//!   (reported per cell with the JSON paths that moved).
//!
//! The `apex` binary (`crates/cli`) fronts all of it:
//! `apex suite run|expand`, `apex drift`, `apex run`, `apex synth …`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bench;
pub mod drift;
pub mod fault;
pub mod fsck;
pub mod gc;
pub mod journal;
pub mod lease;
pub mod runner;
pub mod store;
pub mod suite;

pub use bench::{BenchDoc, BenchRun, ExecStatsDoc};
pub use drift::{check_against_store, compare_stores, json_diff, DriftKind, DriftReport};
pub use fault::{
    is_kill, BitFlip, FaultInjector, FaultPlan, TornWrite, TransientFault, WriteDirective,
    CELL_PANIC_MARKER, KILL_MARKER,
};
pub use fsck::{fsck, FsckIssue, FsckIssueKind, FsckReport};
pub use gc::{gc, GcReport};
pub use journal::{
    finish_seq, next_finish_seq, read_journal, Journal, JournalEntry, JournalState, JOURNAL_FILE,
    JOURNAL_FORMAT_MAJOR,
};
pub use lease::{
    lease_dir, lease_path, read_leases, remove_lease_dir_if_empty, Lease, LEASE_DIR,
    LEASE_FORMAT_MAJOR,
};
pub use runner::{
    assemble_run, run_cells, run_suite, run_suite_journaled, JournalOpts, JournaledRun,
    OutputMismatch, SuiteRun,
};
pub use store::{
    CacheLookup, LabStore, Manifest, ManifestCell, CACHE_STATS_FILE, DEFAULT_STORE_ROOT,
    EXEC_STATS_FILE, MAX_WRITE_ATTEMPTS, QUARANTINE_DIR, TELEMETRY_FILES,
};
pub use suite::{
    Cell, Grid, OutputExpectation, SeedRange, Suite, SUITE_FORMAT_MAJOR, SUITE_FORMAT_MINOR,
};

/// 16-hex-digit content digest (FNV-1a via
/// [`apex_scenario::fnv1a64`]) — the store's address format.
pub fn digest_hex(bytes: &[u8]) -> String {
    format!("{:016x}", apex_scenario::fnv1a64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_scenario::{ProgramSource, Scenario, SourceSpec};
    use apex_scheme::SchemeKind;
    use apex_sim::ScheduleKind;

    fn small_suite() -> Suite {
        let mut suite = Suite::new("lab-unit");
        suite
            .cells
            .push(Scenario::agreement(8, SourceSpec::Random(50), 1, 11));
        let mut grid = Grid::new(Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::library("coin-sum", 8, vec![16]),
            1,
        ));
        grid.schedules = vec![
            ScheduleKind::Uniform.into(),
            ScheduleKind::Bursty { mean_burst: 4 }.into(),
        ];
        grid.seeds = Some(SeedRange { start: 1, count: 2 });
        suite.grids.push(grid);
        suite
    }

    fn temp_store(tag: &str) -> LabStore {
        let dir = std::env::temp_dir().join(format!("apex-lab-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        LabStore::new(dir)
    }

    #[test]
    fn run_store_drift_round_trip_and_mutation_detection() {
        let suite = small_suite();
        let store = temp_store("roundtrip");

        // Run and store.
        let run = run_suite(&suite).unwrap();
        assert_eq!(run.outcomes.len(), 5);
        assert_eq!(run.records().count(), 5);
        let manifest = store.write_run(&run).unwrap();
        assert_eq!(manifest.cells.len(), 5);
        assert!(manifest.cells.iter().all(|c| c.status == "complete"));
        assert!(manifest.cells.iter().all(|c| c.checksum.is_some()));

        // A fresh check is clean.
        let report = check_against_store(&suite, &store).unwrap();
        assert!(report.clean(), "{}", report.summary());

        // Re-writing the same run is byte-idempotent.
        let digest = suite.digest();
        let before = store
            .read_record(&digest, &manifest.cells[0].digest)
            .unwrap()
            .0;
        store.write_run(&run).unwrap();
        let after = store
            .read_record(&digest, &manifest.cells[0].digest)
            .unwrap()
            .0;
        assert_eq!(before, after);

        // Mutating one record is flagged with a field-level detail.
        let victim = store.record_path(&digest, &manifest.cells[1].digest);
        let tampered =
            std::fs::read_to_string(&victim)
                .unwrap()
                .replacen("\"ticks\": ", "\"ticks\": 1", 1);
        std::fs::write(&victim, tampered).unwrap();
        let report = check_against_store(&suite, &store).unwrap();
        assert_eq!(report.divergences.len(), 1);
        assert_eq!(report.divergences[0].kind, DriftKind::RecordDiffers);
        assert!(
            report.divergences[0].detail.contains("ticks"),
            "{}",
            report.summary()
        );

        // A present-but-unparseable record is "differs", not "missing".
        store.write_run(&run).unwrap();
        std::fs::write(
            store.record_path(&digest, &manifest.cells[1].digest),
            "not json at all",
        )
        .unwrap();
        let report = check_against_store(&suite, &store).unwrap();
        assert_eq!(report.divergences.len(), 1);
        assert_eq!(report.divergences[0].kind, DriftKind::RecordDiffers);

        // Deleting a record is flagged as missing.
        store.write_run(&run).unwrap();
        std::fs::remove_file(store.record_path(&digest, &manifest.cells[2].digest)).unwrap();
        let report = check_against_store(&suite, &store).unwrap();
        assert!(report
            .divergences
            .iter()
            .any(|d| d.kind == DriftKind::MissingRecord));

        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn output_assertions_gate_the_run() {
        use apex_pram::library::gen_values;
        // tree-reduce-max writes max(gen_values(8, 3)) into its output.
        let cell = Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::library("tree-reduce-max", 8, vec![3]),
            1,
        );
        let digest = cell.digest();
        let truth = gen_values(8, 3).iter().copied().fold(0, u64::max);

        let mut suite = Suite::new("pinned");
        suite.cells.push(cell);
        suite.expect.push(OutputExpectation {
            cell: digest.clone(),
            outputs: vec![truth],
        });
        let run = run_suite(&suite).unwrap();
        assert!(run.all_ok(), "{:?}", run.output_mismatches);

        // The same suite pinning the wrong value fails the run even
        // though the verifier is clean on every cell.
        suite.expect[0].outputs = vec![truth + 1];
        let run = run_suite(&suite).unwrap();
        assert_eq!(run.ok_count(), run.outcomes.len(), "verifier stays clean");
        assert!(!run.all_ok());
        assert_eq!(run.output_mismatches.len(), 1);
        let m = &run.output_mismatches[0];
        assert_eq!(m.digest, digest);
        assert_eq!(m.expected, vec![truth + 1]);
        assert_eq!(m.actual, Some(vec![truth]));
        assert!(m.to_string().contains("expected outputs"));
    }

    #[test]
    fn changed_scenario_shows_up_as_missing_plus_extra() {
        let mut suite = small_suite();
        let store = temp_store("changed");
        store.write_run(&run_suite(&suite).unwrap()).unwrap();

        // Changing a cell moves its content address; checking the *edited*
        // suite against the old store is a different suite digest, so pin
        // the store by keeping the suite digest fixed: mutate a stored
        // record's *name* instead (same effect as a scenario edit).
        let manifest = store.read_manifest(&suite.digest()).unwrap();
        let old = store.record_path(&suite.digest(), &manifest.cells[0].digest);
        let renamed = store
            .suite_dir(&suite.digest())
            .join("feedfacefeedface.json");
        std::fs::rename(&old, &renamed).unwrap();
        let report = check_against_store(&suite, &store).unwrap();
        assert!(report
            .divergences
            .iter()
            .any(|d| d.kind == DriftKind::MissingRecord));
        assert!(report
            .divergences
            .iter()
            .any(|d| d.kind == DriftKind::ExtraRecord));

        // And an edited suite simply has no stored run yet.
        suite.cells[0].seed += 1;
        assert!(check_against_store(&suite, &store).is_err());

        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn store_comparison_flags_byte_differences() {
        let suite = small_suite();
        let a = temp_store("cmp-a");
        let b = temp_store("cmp-b");
        let run = run_suite(&suite).unwrap();
        a.write_run(&run).unwrap();
        b.write_run(&run).unwrap();
        let report = compare_stores(&a, &b).unwrap();
        assert!(report.clean(), "{}", report.summary());

        let manifest = a.read_manifest(&suite.digest()).unwrap();
        std::fs::remove_file(b.record_path(&suite.digest(), &manifest.cells[0].digest)).unwrap();
        let report = compare_stores(&a, &b).unwrap();
        assert!(!report.clean());

        let _ = std::fs::remove_dir_all(a.root());
        let _ = std::fs::remove_dir_all(b.root());
    }

    #[test]
    fn json_diff_names_moved_paths() {
        use apex_sim::Json;
        let a = Json::parse(r#"{"x": 1, "y": [1, 2], "z": {"w": true}}"#).unwrap();
        let b = Json::parse(r#"{"x": 2, "y": [1, 3], "z": {"w": true}}"#).unwrap();
        let diffs = json_diff(&a, &b, 4);
        assert_eq!(diffs.len(), 2, "{diffs:?}");
        assert!(diffs[0].contains(".x"));
        assert!(diffs[1].contains(".y[1]"));
        assert!(json_diff(&a, &a, 4).is_empty());
    }
}
