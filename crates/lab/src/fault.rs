//! Deterministic fault injection for the lab's crash-safety machinery.
//!
//! A [`FaultPlan`] is a serializable description of *exactly which* store
//! operations misbehave — kill the process before the k-th journal
//! append, tear the j-th store write, flip one bit of another, fail a
//! write transiently, panic a chosen cell. Injected into a
//! [`LabStore`](crate::LabStore) (and the journaled runner) via a
//! [`FaultInjector`], the plan triggers by **operation index**, never by
//! wall clock or thread timing, so every fault scenario in
//! `tests/lab_faults.rs` replays bit-for-bit. This is the same move the
//! rest of the workspace makes for adversarial schedules: the adversary
//! is data, the run is a pure function of it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use apex_sim::{Json, JsonError};

/// Marker carried by every error produced by a simulated process kill.
/// Retry logic treats errors containing this marker as fatal (a dead
/// process cannot retry), and tests use it to tell injected kills from
/// genuine I/O failures.
pub const KILL_MARKER: &str = "injected fault: simulated kill";

/// Panic message used for plan-injected cell panics.
pub const CELL_PANIC_MARKER: &str = "injected fault: cell panic";

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// Tear one store write: only the first `keep` bytes of write number
/// `write` reach the *final* path (bypassing temp+rename, simulating a
/// pre-atomic-write crash or a filesystem that lies about rename), after
/// which the process dies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TornWrite {
    /// Zero-based store-write index to tear.
    pub write: u64,
    /// Bytes of the intended content that reach disk.
    pub keep: usize,
}

/// Silently corrupt one store write: XOR `mask` into byte `byte` of
/// write number `write`. The write "succeeds" — the corruption is only
/// discoverable by integrity checking (`apex lab fsck`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitFlip {
    /// Zero-based store-write index to corrupt.
    pub write: u64,
    /// Byte offset within the written content (clamped to length − 1).
    pub byte: usize,
    /// XOR mask applied to that byte (0 disables; tests use nonzero).
    pub mask: u8,
}

/// Fail attempts at one store write with a transient I/O error: the
/// first `fails` attempts of write number `write` error, later attempts
/// succeed — the shape bounded retry must absorb.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransientFault {
    /// Zero-based store-write index to disturb.
    pub write: u64,
    /// How many leading attempts fail.
    pub fails: u32,
}

/// A serializable, seeded description of every fault one run injects.
///
/// Indices count *operations*, not time: journal appends are numbered in
/// append order, store writes in issue order, so a plan names the same
/// faults on every replay of the same (suite, plan) pair.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Kill the process immediately before journal append number `k`
    /// (zero-based): exactly `k` appends land, append `k` fails with
    /// [`KILL_MARKER`], and every later store/journal operation fails
    /// too (a dead process does nothing further).
    pub kill_after_journal: Option<u64>,
    /// Tear one store write.
    pub torn_write: Option<TornWrite>,
    /// Silently bit-flip one store write.
    pub bit_flip: Option<BitFlip>,
    /// Panic the runner inside these cells (by expansion index).
    pub panic_cells: Vec<usize>,
    /// Transiently fail attempts at these store writes.
    pub transient: Vec<TransientFault>,
}

impl FaultPlan {
    /// Serialize (canonical field order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "kill_after_journal".into(),
                self.kill_after_journal.map_or(Json::Null, Json::UInt),
            ),
            (
                "torn_write".into(),
                self.torn_write.as_ref().map_or(Json::Null, |t| {
                    Json::Obj(vec![
                        ("write".into(), Json::UInt(t.write)),
                        ("keep".into(), Json::UInt(t.keep as u64)),
                    ])
                }),
            ),
            (
                "bit_flip".into(),
                self.bit_flip.as_ref().map_or(Json::Null, |b| {
                    Json::Obj(vec![
                        ("write".into(), Json::UInt(b.write)),
                        ("byte".into(), Json::UInt(b.byte as u64)),
                        ("mask".into(), Json::UInt(b.mask as u64)),
                    ])
                }),
            ),
            (
                "panic_cells".into(),
                Json::Arr(
                    self.panic_cells
                        .iter()
                        .map(|&i| Json::UInt(i as u64))
                        .collect(),
                ),
            ),
            (
                "transient".into(),
                Json::Arr(
                    self.transient
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("write".into(), Json::UInt(t.write)),
                                ("fails".into(), Json::UInt(t.fails as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserialize.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let opt_u64 = |key: &str| -> Result<Option<u64>, JsonError> {
            match v.get(key)? {
                Json::Null => Ok(None),
                other => Ok(Some(other.as_u64()?)),
            }
        };
        Ok(FaultPlan {
            kill_after_journal: opt_u64("kill_after_journal")?,
            torn_write: match v.get("torn_write")? {
                Json::Null => None,
                t => Some(TornWrite {
                    write: t.get("write")?.as_u64()?,
                    keep: t.get("keep")?.as_usize()?,
                }),
            },
            bit_flip: match v.get("bit_flip")? {
                Json::Null => None,
                b => {
                    let mask = b.get("mask")?.as_u64()?;
                    Some(BitFlip {
                        write: b.get("write")?.as_u64()?,
                        byte: b.get("byte")?.as_usize()?,
                        mask: u8::try_from(mask)
                            .map_err(|_| jerr(format!("bit-flip mask {mask} exceeds u8")))?,
                    })
                }
            },
            panic_cells: v
                .get("panic_cells")?
                .as_arr()?
                .iter()
                .map(Json::as_usize)
                .collect::<Result<_, _>>()?,
            transient: v
                .get("transient")?
                .as_arr()?
                .iter()
                .map(|t| {
                    let fails = t.get("fails")?.as_u64()?;
                    Ok(TransientFault {
                        write: t.get("write")?.as_u64()?,
                        fails: u32::try_from(fails)
                            .map_err(|_| jerr(format!("transient fails {fails} exceeds u32")))?,
                    })
                })
                .collect::<Result<_, JsonError>>()?,
        })
    }

    /// Parse a complete plan document.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Load and parse a plan file.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// What the injector tells the store to do with one write attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteDirective {
    /// Perform the write normally.
    Proceed,
    /// Fail this attempt with a transient (retryable) I/O error.
    Transient,
    /// Write only a prefix to the final path, then die.
    Torn(usize),
    /// XOR `mask` into byte `byte` of the content, then write "normally".
    Flip {
        /// Byte offset to corrupt.
        byte: usize,
        /// XOR mask.
        mask: u8,
    },
}

/// Shared runtime state driving a [`FaultPlan`]: operation counters and
/// the "process is dead" latch. Threads share one injector via `Arc`.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    journal_appends: AtomicU64,
    store_writes: AtomicU64,
    killed: AtomicBool,
}

impl FaultInjector {
    /// An injector executing `plan` from operation zero.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            ..FaultInjector::default()
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether a simulated kill has fired (after which every operation
    /// fails).
    pub fn killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// Journal appends that have been allowed so far.
    pub fn journal_appends(&self) -> u64 {
        self.journal_appends.load(Ordering::SeqCst)
    }

    /// Gate one journal append: `Err(KILL_MARKER…)` when the plan kills
    /// at this boundary (or already killed), `Ok` otherwise.
    pub fn on_journal_append(&self) -> Result<(), String> {
        if self.killed() {
            return Err(format!("{KILL_MARKER} (process already dead)"));
        }
        let n = self.journal_appends.load(Ordering::SeqCst);
        if self.plan.kill_after_journal == Some(n) {
            self.killed.store(true, Ordering::SeqCst);
            return Err(format!("{KILL_MARKER} before journal append {n}"));
        }
        self.journal_appends.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Claim the next store-write index (one per *logical* write; retry
    /// attempts reuse the index via [`FaultInjector::directive`]).
    pub fn next_store_write(&self) -> u64 {
        self.store_writes.fetch_add(1, Ordering::SeqCst)
    }

    /// What should happen to attempt `attempt` of store write `write`.
    pub fn directive(&self, write: u64, attempt: u32) -> WriteDirective {
        if let Some(t) = &self.plan.torn_write {
            if t.write == write {
                return WriteDirective::Torn(t.keep);
            }
        }
        if let Some(b) = &self.plan.bit_flip {
            if b.write == write {
                return WriteDirective::Flip {
                    byte: b.byte,
                    mask: b.mask,
                };
            }
        }
        if self
            .plan
            .transient
            .iter()
            .any(|t| t.write == write && attempt < t.fails)
        {
            return WriteDirective::Transient;
        }
        WriteDirective::Proceed
    }

    /// Latch the dead-process state (torn writes die after tearing).
    pub fn kill(&self) {
        self.killed.store(true, Ordering::SeqCst);
    }

    /// Whether the plan panics the runner inside cell `index`.
    pub fn panics_cell(&self, index: usize) -> bool {
        self.plan.panic_cells.contains(&index)
    }
}

/// Whether an error message denotes a simulated kill (fatal — never
/// retried, reported as an interrupted run).
pub fn is_kill(msg: &str) -> bool {
    msg.contains(KILL_MARKER)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_plan() -> FaultPlan {
        FaultPlan {
            kill_after_journal: Some(3),
            torn_write: Some(TornWrite { write: 2, keep: 17 }),
            bit_flip: Some(BitFlip {
                write: 4,
                byte: 9,
                mask: 0x40,
            }),
            panic_cells: vec![1, 5],
            transient: vec![TransientFault { write: 0, fails: 2 }],
        }
    }

    #[test]
    fn plan_round_trips_byte_identically() {
        for plan in [FaultPlan::default(), full_plan()] {
            let text = plan.to_json().render_pretty();
            let back = FaultPlan::parse(&text).unwrap();
            assert_eq!(back, plan);
            assert_eq!(back.to_json().render_pretty(), text);
        }
    }

    #[test]
    fn kill_fires_exactly_at_the_planned_boundary_and_latches() {
        let inj = FaultInjector::new(FaultPlan {
            kill_after_journal: Some(2),
            ..FaultPlan::default()
        });
        assert!(inj.on_journal_append().is_ok());
        assert!(inj.on_journal_append().is_ok());
        let err = inj.on_journal_append().unwrap_err();
        assert!(is_kill(&err), "{err}");
        // Dead processes stay dead.
        assert!(inj.on_journal_append().is_err());
        assert!(inj.killed());
        assert_eq!(inj.journal_appends(), 2);
    }

    #[test]
    fn directives_trigger_by_write_index_and_attempt() {
        let inj = FaultInjector::new(full_plan());
        assert_eq!(inj.directive(0, 0), WriteDirective::Transient);
        assert_eq!(inj.directive(0, 1), WriteDirective::Transient);
        assert_eq!(inj.directive(0, 2), WriteDirective::Proceed);
        assert_eq!(inj.directive(1, 0), WriteDirective::Proceed);
        assert_eq!(inj.directive(2, 0), WriteDirective::Torn(17));
        assert_eq!(
            inj.directive(4, 0),
            WriteDirective::Flip {
                byte: 9,
                mask: 0x40
            }
        );
        assert_eq!(inj.next_store_write(), 0);
        assert_eq!(inj.next_store_write(), 1);
        assert!(inj.panics_cell(5));
        assert!(!inj.panics_cell(0));
    }
}
