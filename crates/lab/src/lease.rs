//! Shard leases — the only coordination farm workers use.
//!
//! A worker draining a suite claims a *shard* (a contiguous range of
//! cell indices) by writing a lease file under the suite directory:
//!
//! ```text
//! .apex/lab/<suite-digest>/leases/shard-<k>.json
//! ```
//!
//! Leases are written through [`LabStore::write_text`], so they are
//! fsynced, atomic, and fault-injectable like every other store write.
//! They are **disposable**: record writes are content-addressed and
//! idempotent, so the worst consequence of a stolen or expired lease is
//! duplicated work, never corruption — which is why fsck *reclaims*
//! (deletes) bad leases instead of quarantining them.
//!
//! **Expiry is operation-indexed, not wall-clock.** A lease stores the
//! suite journal's entry count at claim time (`issued_at`) and a budget
//! of further appends (`ttl`); it expires once the journal holds
//! `issued_at + ttl` entries. Progress by any worker advances the
//! clock, a waiting worker can advance it with probe entries, and the
//! fault harness can drive every expiry deterministically — no test
//! ever sleeps to make a lease lapse.

use std::path::PathBuf;

use apex_sim::{Json, JsonError};

use crate::store::LabStore;

/// Name of the lease directory inside a suite directory. The whole
/// directory is removed when a suite finalizes — a converged store has
/// no `leases/` at all.
pub const LEASE_DIR: &str = "leases";

/// Major version stamped on every lease file (mismatches read as torn).
pub const LEASE_FORMAT_MAJOR: u64 = 1;

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// One shard claim: who holds which cell range of which suite, and when
/// the claim lapses on the journal's operation clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lease {
    /// Digest of the suite the shard belongs to.
    pub suite: String,
    /// Shard number (file name is `shard-<shard>.json`).
    pub shard: u64,
    /// First cell index covered.
    pub start: u64,
    /// Number of cells covered.
    pub count: u64,
    /// Claiming worker's identifier (diagnostic only — expiry, not
    /// identity, is what releases a lease).
    pub worker: String,
    /// Journal entry count at claim time.
    pub issued_at: u64,
    /// Journal appends until expiry.
    pub ttl: u64,
}

impl Lease {
    /// Whether the lease has lapsed given the journal's current entry
    /// count.
    pub fn expired(&self, journal_len: u64) -> bool {
        // An overflowing budget can never be consumed: such a lease is
        // immortal, not instantly expired.
        match self.issued_at.checked_add(self.ttl) {
            Some(deadline) => journal_len >= deadline,
            None => false,
        }
    }

    /// Serialize (canonical field order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("v".into(), Json::UInt(LEASE_FORMAT_MAJOR)),
            ("suite".into(), Json::Str(self.suite.clone())),
            ("shard".into(), Json::UInt(self.shard)),
            ("start".into(), Json::UInt(self.start)),
            ("count".into(), Json::UInt(self.count)),
            ("worker".into(), Json::Str(self.worker.clone())),
            ("issued_at".into(), Json::UInt(self.issued_at)),
            ("ttl".into(), Json::UInt(self.ttl)),
        ])
    }

    /// Deserialize (rejects unknown major versions).
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = v.get("v")?.as_u64()?;
        if version != LEASE_FORMAT_MAJOR {
            return Err(jerr(format!(
                "unsupported lease version {version} (this build reads {LEASE_FORMAT_MAJOR})"
            )));
        }
        Ok(Lease {
            suite: v.get("suite")?.as_str()?.to_string(),
            shard: v.get("shard")?.as_u64()?,
            start: v.get("start")?.as_u64()?,
            count: v.get("count")?.as_u64()?,
            worker: v.get("worker")?.as_str()?.to_string(),
            issued_at: v.get("issued_at")?.as_u64()?,
            ttl: v.get("ttl")?.as_u64()?,
        })
    }

    /// Parse a complete lease file.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// The canonical pretty-printed document.
    pub fn render_pretty(&self) -> String {
        self.to_json().render_pretty()
    }
}

/// The lease directory of one suite.
pub fn lease_dir(store: &LabStore, suite_digest: &str) -> PathBuf {
    store.suite_dir(suite_digest).join(LEASE_DIR)
}

/// The lease file path for one shard of one suite.
pub fn lease_path(store: &LabStore, suite_digest: &str, shard: u64) -> PathBuf {
    lease_dir(store, suite_digest).join(format!("shard-{shard}.json"))
}

/// One lease file on disk: its path plus either the parsed lease or the
/// parse failure (torn leases are data for fsck, not an error).
pub type LeaseFile = (PathBuf, Result<Lease, String>);

/// Every lease file under one suite, sorted by file name. An absent
/// lease directory reads as empty.
pub fn read_leases(store: &LabStore, suite_digest: &str) -> Result<Vec<LeaseFile>, String> {
    let dir = lease_dir(store, suite_digest);
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        if path.is_dir() {
            continue;
        }
        let parsed = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| Lease::parse(&text).map_err(|e| e.to_string()));
        out.push((path, parsed));
    }
    Ok(out)
}

/// Remove the lease directory of one suite if it holds no leases (or
/// nothing at all). Called at finalize so a converged store carries no
/// queue debris.
pub fn remove_lease_dir_if_empty(store: &LabStore, suite_digest: &str) {
    let dir = lease_dir(store, suite_digest);
    let _ = std::fs::remove_dir(&dir);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Lease {
        Lease {
            suite: "0123456789abcdef".into(),
            shard: 2,
            start: 8,
            count: 4,
            worker: "w1".into(),
            issued_at: 11,
            ttl: 6,
        }
    }

    #[test]
    fn leases_round_trip_byte_identically() {
        let lease = sample();
        let text = lease.render_pretty();
        let back = Lease::parse(&text).unwrap();
        assert_eq!(back, lease);
        assert_eq!(back.render_pretty(), text);
    }

    #[test]
    fn expiry_is_operation_indexed() {
        let lease = sample();
        assert!(!lease.expired(11), "fresh at claim time");
        assert!(!lease.expired(16), "one append short of the budget");
        assert!(lease.expired(17), "budget consumed");
        let immortal = Lease {
            ttl: u64::MAX,
            ..sample()
        };
        assert!(!immortal.expired(u64::MAX), "saturating, not wrapping");
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut json = sample().to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::UInt(LEASE_FORMAT_MAJOR + 1);
        }
        assert!(Lease::from_json(&json)
            .unwrap_err()
            .msg
            .contains("lease version"));
    }

    #[test]
    fn reading_leases_tolerates_torn_files() {
        let dir = std::env::temp_dir().join(format!("apex-lease-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = LabStore::new(&dir);
        let suite = "feedfacefeedface";
        assert!(read_leases(&store, suite).unwrap().is_empty());
        std::fs::create_dir_all(lease_dir(&store, suite)).unwrap();
        std::fs::write(lease_path(&store, suite, 0), sample().render_pretty()).unwrap();
        std::fs::write(lease_path(&store, suite, 1), "{\"v\":1,\"sui").unwrap();
        let leases = read_leases(&store, suite).unwrap();
        assert_eq!(leases.len(), 2);
        assert!(leases[0].1.is_ok());
        assert!(leases[1].1.is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
