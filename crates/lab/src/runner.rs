//! Executing a suite on the workspace's parallel trial runner.

use apex_bench::runner::run_trials;
use apex_scenario::ReportRecord;

use crate::suite::{Cell, Suite};

/// A completed suite execution: one [`ReportRecord`] per cell, in
/// expansion order (the runner collects results in config order, so the
/// record list is identical whether the run was serial or parallel).
#[derive(Clone, Debug)]
pub struct SuiteRun {
    /// Suite name.
    pub name: String,
    /// Digest of the canonical suite document.
    pub suite_digest: String,
    /// One record per cell, in expansion order.
    pub records: Vec<ReportRecord>,
}

impl SuiteRun {
    /// Number of cells whose run met its mode's correctness bar.
    pub fn ok_count(&self) -> usize {
        self.records.iter().filter(|r| r.ok()).count()
    }
}

/// Expand and execute every cell of `suite` across worker threads
/// (`APEX_RUNNER_THREADS` controls fan-out, as everywhere else).
///
/// Fails up front if the suite is ill-formed; a cell that trips its stall
/// budget panics the run (suites are trusted experiment descriptions, not
/// fuzz inputs — the synthesis oracle is the layer that sandboxes runs).
pub fn run_suite(suite: &Suite) -> Result<SuiteRun, String> {
    let cells = suite.expand()?;
    Ok(run_cells(suite, &cells))
}

/// [`run_suite`] over an already-expanded cell list (callers that need
/// the cells anyway, e.g. drift, avoid expanding twice).
pub fn run_cells(suite: &Suite, cells: &[Cell]) -> SuiteRun {
    let records = run_trials(cells, |cell| ReportRecord::run(&cell.scenario));
    SuiteRun {
        name: suite.name.clone(),
        suite_digest: suite.digest(),
        records,
    }
}
