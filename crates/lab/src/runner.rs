//! Executing a suite on the workspace's parallel trial runner, with
//! per-cell panic isolation and (optionally) write-ahead journaling.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

use apex_bench::runner::{resolve_threads, run_trials};
use apex_obs::{Metrics, ObsOpts, POW2_BOUNDS};
use apex_scenario::{CacheStats, ExecMode, ExecStats, ReportRecord, RunOutcome};

use crate::bench::ExecStatsDoc;

use crate::fault::CELL_PANIC_MARKER;
use crate::journal::{next_finish_seq, Journal, JournalEntry};
use crate::store::{CacheLookup, LabStore, Manifest};
use crate::suite::{Cell, Suite};

/// A pinned cell whose run produced the wrong results: the suite's
/// [`OutputExpectation`](crate::suite::OutputExpectation) disagreed with
/// the record's named outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputMismatch {
    /// Cell index in expansion order.
    pub index: usize,
    /// The cell's scenario digest.
    pub digest: String,
    /// What the suite pinned.
    pub expected: Vec<u64>,
    /// What the run produced (`None` if the record carried no outputs or
    /// the cell did not complete).
    pub actual: Option<Vec<u64>>,
}

impl std::fmt::Display for OutputMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {} ({}): expected outputs {:?}, got {:?}",
            self.index, self.digest, self.expected, self.actual
        )
    }
}

/// A completed suite execution: one [`RunOutcome`] per cell, in
/// expansion order (the runner collects results in config order, so the
/// outcome list is identical whether the run was serial or parallel),
/// plus any failed output assertions.
///
/// Every cell reaches a *typed* terminal state — complete, exhausted
/// (tick budget), or poisoned (panic) — and one bad cell never aborts
/// the rest of the campaign.
#[derive(Clone, Debug)]
pub struct SuiteRun {
    /// Suite name.
    pub name: String,
    /// Digest of the canonical suite document.
    pub suite_digest: String,
    /// One outcome per cell, in expansion order.
    pub outcomes: Vec<RunOutcome>,
    /// Output assertions that failed: pinned cells whose run produced
    /// different results even though the verifier may have been clean.
    pub output_mismatches: Vec<OutputMismatch>,
}

impl SuiteRun {
    /// The completed records, in expansion order (cells that exhausted
    /// or poisoned have none).
    pub fn records(&self) -> impl Iterator<Item = &ReportRecord> {
        self.outcomes.iter().filter_map(|o| o.record())
    }

    /// Number of cells whose run completed and met its mode's
    /// correctness bar.
    pub fn ok_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.ok()).count()
    }

    /// Whether every cell completed clean *and* every pinned output
    /// assertion held.
    pub fn all_ok(&self) -> bool {
        self.ok_count() == self.outcomes.len() && self.output_mismatches.is_empty()
    }
}

/// Expand and execute every cell of `suite` across worker threads
/// (`APEX_RUNNER_THREADS` controls fan-out, as everywhere else).
///
/// Fails up front if the suite is ill-formed. Each cell runs under
/// `catch_unwind` ([`RunOutcome::capture`]): a stall-budget trip becomes
/// a typed `exhausted` outcome, any other panic a `poisoned` one, and
/// the remaining cells run regardless.
pub fn run_suite(suite: &Suite) -> Result<SuiteRun, String> {
    let cells = suite.expand()?;
    Ok(run_cells(suite, &cells))
}

/// [`run_suite`] over an already-expanded cell list (callers that need
/// the cells anyway, e.g. drift, avoid expanding twice).
pub fn run_cells(suite: &Suite, cells: &[Cell]) -> SuiteRun {
    let outcomes = run_trials(cells, |cell| RunOutcome::capture(&cell.scenario));
    finish_run(suite, cells, outcomes)
}

/// Check pinned outputs and assemble the [`SuiteRun`] from outcomes
/// gathered elsewhere — the farm's manifest merger reconstructs outcomes
/// from verified records plus journal entries and finalizes through this
/// same path, so its manifest is byte-identical to a single-runner one.
pub fn assemble_run(suite: &Suite, cells: &[Cell], outcomes: Vec<RunOutcome>) -> SuiteRun {
    finish_run(suite, cells, outcomes)
}

/// Check pinned outputs and assemble the [`SuiteRun`].
fn finish_run(suite: &Suite, cells: &[Cell], outcomes: Vec<RunOutcome>) -> SuiteRun {
    // Check the suite's pinned outputs against what actually ran
    // (expansion validated that every pinned digest names a cell).
    let mut output_mismatches = Vec::new();
    for expect in &suite.expect {
        for (cell, outcome) in cells.iter().zip(&outcomes) {
            if cell.digest != expect.cell {
                continue;
            }
            let actual = outcome.record().and_then(|r| r.outputs.clone());
            if actual.as_deref() != Some(expect.outputs.as_slice()) {
                output_mismatches.push(OutputMismatch {
                    index: cell.index,
                    digest: cell.digest.clone(),
                    expected: expect.outputs.clone(),
                    actual,
                });
            }
        }
    }
    SuiteRun {
        name: suite.name.clone(),
        suite_digest: suite.digest(),
        outcomes,
        output_mismatches,
    }
}

/// Options for [`run_suite_journaled`].
#[derive(Clone, Debug, Default)]
pub struct JournalOpts {
    /// Resume an interrupted run: keep the existing journal and skip
    /// cells whose stored records digest-verify byte-for-byte.
    pub resume: bool,
    /// Memoize: consult the store before executing any cell, skip
    /// verified hits, tally a [`CacheStats`], and write the
    /// `cache-stats.json` sidecar. Unlike `resume`, hits are also
    /// checked against the existing manifest's pinned checksums, and the
    /// tally distinguishes misses from rejected (present-but-unverified)
    /// bytes.
    pub cached: bool,
    /// Explicit worker-thread count (`None` resolves through
    /// [`resolve_threads`] — `APEX_RUNNER_THREADS` if set, else all
    /// cores; `Some(1)` forces the serial path, whose journal line order
    /// is fully deterministic).
    pub threads: Option<usize>,
    /// Runtime execution-engine override for kernel-mode cells
    /// ([`Scenario::run_with_exec`](apex_scenario::Scenario::run_with_exec)):
    /// `None` honors each scenario's own engine knob. The override never
    /// changes a result byte — records, manifests, and digests are
    /// engine-independent.
    pub exec: Option<ExecMode>,
    /// Runtime interpreter-engine override for scheme-mode cells
    /// ([`Scenario::run_with_engines`](apex_scenario::Scenario::run_with_engines)):
    /// `None` honors each scenario's own engine knob. Like `exec`, the
    /// override never changes a result byte.
    pub engine: Option<apex_scenario::ProgramEngine>,
    /// Measure wall-clock execution time and write the `exec-stats.json`
    /// sidecar (timing telemetry, excluded from byte-identity checks).
    /// Also folds `time.*` entries into the unified metrics document.
    pub timing: bool,
    /// Telemetry plane: trace sink and metrics collection
    /// ([`apex_obs::ObsOpts`]). Telemetry observes the run and never
    /// steers it — with any of this on, every record, manifest, and
    /// digest byte is identical to a dark run.
    pub obs: ObsOpts,
}

/// The result of a journaled run: the run itself plus what resume
/// skipped vs executed.
#[derive(Clone, Debug)]
pub struct JournaledRun {
    /// The completed run.
    pub run: SuiteRun,
    /// The manifest written at the end.
    pub manifest: Manifest,
    /// Cell indices skipped because their stored record verified.
    pub skipped: Vec<usize>,
    /// Cell indices actually executed this time.
    pub executed: Vec<usize>,
    /// Memoization tally (all zero unless `resume` or `cached` consulted
    /// the store).
    pub cache: CacheStats,
    /// Wall-clock milliseconds spent executing this run's pending cells
    /// (telemetry only — never part of any stored result byte).
    pub elapsed_ms: u64,
    /// Machine ticks consumed by the cells executed this run (skipped
    /// cells contribute nothing — their ticks were paid for earlier).
    pub executed_ticks: u64,
    /// Aggregated execution-engine stats over the executed cells
    /// (worker count is a max, window/conflict/rerun counts are sums —
    /// see [`ExecStats::absorb`]). All trivial for serial-engine runs.
    pub exec: ExecStats,
    /// The unified metrics document written to `metrics.json` (empty
    /// unless the run requested metrics, caching, or timing).
    pub metrics: Metrics,
}

impl JournaledRun {
    /// Cells that ended in the named terminal status.
    pub fn status_count(&self, status: &str) -> usize {
        self.run
            .outcomes
            .iter()
            .filter(|o| o.status() == status)
            .count()
    }

    /// Throughput over the executed cells, in ticks per second.
    pub fn ticks_per_sec(&self) -> u64 {
        self.executed_ticks.saturating_mul(1000) / self.elapsed_ms.max(1)
    }
}

/// Execute `suite` with a write-ahead journal in `store`.
///
/// Protocol, per cell: append `claimed`, run the cell under
/// `catch_unwind`, then either write the record atomically and append
/// `committed`, or append `poisoned` (no record). The run starts with a
/// `started` entry and — once the manifest is durably written — ends
/// with `finished`. A crash at *any* boundary leaves a journal prefix
/// plus a set of verified record files; re-running with
/// `opts.resume = true` skips every cell whose content-addressed record
/// already exists, parses, digest-verifies, and is byte-identical to
/// its canonical rendering, then executes only the remainder. The final
/// manifest and record set are byte-identical to an uninterrupted run
/// (the determinism the whole store is built on).
///
/// With a [`FaultInjector`](crate::fault::FaultInjector) installed on
/// `store`, injected kills surface as `Err` mid-run — exactly like a
/// real crash, minus the process exit.
pub fn run_suite_journaled(
    suite: &Suite,
    store: &LabStore,
    opts: &JournalOpts,
) -> Result<JournaledRun, String> {
    let cells = suite.expand()?;
    let suite_digest = suite.digest();
    let dir = store.suite_dir(&suite_digest);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let journal_path = store.journal_path(&suite_digest);
    if !opts.resume && journal_path.exists() {
        // A fresh run owns its journal; the previous history is not part
        // of this run's story. Records stay — they are content-addressed
        // and will be rewritten with identical bytes anyway.
        std::fs::remove_file(&journal_path)
            .map_err(|e| format!("{}: {e}", journal_path.display()))?;
    }
    let mut journal = Journal::new(&journal_path);
    if let Some(f) = store.faults() {
        journal = journal.with_faults(f.clone());
    }

    // Telemetry plane. The trace sink (when requested) sees lab-scope
    // cell-lifecycle events from this coordinator thread plus engine-
    // and exec-scope events from inside each cell's run; with
    // `threads = 1` the full interleaving is deterministic (the golden
    // canonical-trace test pins it). Nothing here touches a result byte.
    let obs = opts
        .obs
        .open_trace()
        .map_err(|e| format!("trace open failed: {e}"))?;

    // Resume and the cache path share one rule: trust nothing but
    // verified bytes. A record is skippable only if it exists, parses
    // (which digest-verifies the embedded scenario), sits at its own
    // address, and is byte-identical to its canonical rendering — and,
    // on the cached path, matches the manifest row's pinned checksum.
    let mut slots: Vec<Option<RunOutcome>> = vec![None; cells.len()];
    let mut skipped = Vec::new();
    let mut cache = CacheStats::default();
    if opts.resume || opts.cached {
        let manifest = if opts.cached {
            store.read_manifest(&suite_digest).ok()
        } else {
            None
        };
        for cell in &cells {
            let verdict = match store.lookup_record(&suite_digest, &cell.digest, manifest.as_ref())
            {
                CacheLookup::Hit(_, record) => {
                    slots[cell.index] = Some(RunOutcome::Complete(record));
                    skipped.push(cell.index);
                    cache.hits += 1;
                    "hit"
                }
                CacheLookup::Miss => {
                    cache.misses += 1;
                    "miss"
                }
                CacheLookup::Rejected(_) => {
                    cache.rejected += 1;
                    "rejected"
                }
            };
            obs.emit("lab", "cache", cell.index as u64, verdict, &[]);
        }
    }

    let jerr = |e: std::io::Error| format!("journal append failed: {e}");
    journal
        .append(&JournalEntry::Started {
            suite: suite_digest.clone(),
            name: suite.name.clone(),
            cells: cells.len() as u64,
            resumed: opts.resume,
        })
        .map_err(jerr)?;

    let pending: Vec<usize> = (0..cells.len()).filter(|&i| slots[i].is_none()).collect();
    let executed = pending.clone();

    let run_one = |cell: &Cell| -> (RunOutcome, ExecStats) {
        if store.faults().is_some_and(|f| f.panics_cell(cell.index)) {
            let outcome = RunOutcome::capture_with(&cell.scenario, |_| {
                panic!("{CELL_PANIC_MARKER} in cell {}", cell.index)
            });
            (outcome, ExecStats::default())
        } else {
            RunOutcome::capture_engines_obs(&cell.scenario, opts.exec, opts.engine, &obs)
        }
    };

    // Journal + store writes all happen on this thread, in a strict
    // claimed → (committed | poisoned) order per cell; workers only run
    // scenarios. `threads = 1` takes the fully deterministic serial
    // path (the golden-journal test pins its exact line sequence).
    let commit = |journal: &Journal, cell: &Cell, outcome: &RunOutcome| -> Result<(), String> {
        match outcome.record() {
            Some(record) => {
                store
                    .write_record(&suite_digest, record)
                    .map_err(|e| format!("record write failed: {e}"))?;
                journal
                    .append(&JournalEntry::Committed {
                        index: cell.index as u64,
                        cell: cell.digest.clone(),
                        ok: outcome.ok(),
                        by: String::new(),
                    })
                    .map_err(jerr)?;
                obs.emit(
                    "lab",
                    "commit",
                    cell.index as u64,
                    &cell.digest,
                    &[("ok", u64::from(outcome.ok()))],
                );
                Ok(())
            }
            None => {
                journal
                    .append(&JournalEntry::Poisoned {
                        index: cell.index as u64,
                        cell: cell.digest.clone(),
                        status: outcome.status().to_string(),
                        message: match outcome {
                            RunOutcome::Exhausted { message, .. }
                            | RunOutcome::Poisoned { message, .. } => message.clone(),
                            RunOutcome::Complete(_) => unreachable!("record() is None"),
                        },
                        by: String::new(),
                    })
                    .map_err(jerr)?;
                obs.emit(
                    "lab",
                    outcome.status(),
                    cell.index as u64,
                    &cell.digest,
                    &[],
                );
                Ok(())
            }
        }
    };

    let mut exec = ExecStats::default();
    let threads = resolve_threads(opts.threads).min(pending.len().max(1));
    let started_at = std::time::Instant::now();
    if threads <= 1 {
        for &i in &pending {
            let cell = &cells[i];
            journal
                .append(&JournalEntry::Claimed {
                    index: cell.index as u64,
                    cell: cell.digest.clone(),
                })
                .map_err(jerr)?;
            obs.emit("lab", "claim", cell.index as u64, &cell.digest, &[]);
            let (outcome, stats) = run_one(cell);
            exec.absorb(&stats);
            commit(&journal, cell, &outcome)?;
            slots[i] = Some(outcome);
        }
    } else {
        // One message per cell on a bounded campaign; the size skew is
        // irrelevant next to the run each message reports on.
        #[allow(clippy::large_enum_variant)]
        enum Msg {
            Claimed(usize),
            Done(usize, RunOutcome, ExecStats),
        }
        let stop = AtomicBool::new(false);
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<Msg>();
        let exec = &mut exec;
        let result: Result<(), String> = std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let (cursor, stop, pending, cells) = (&cursor, &stop, &pending, &cells);
                let run_one = &run_one;
                scope.spawn(move || loop {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = pending.get(k) else { break };
                    if tx.send(Msg::Claimed(i)).is_err() {
                        break;
                    }
                    let (outcome, stats) = run_one(&cells[i]);
                    if tx.send(Msg::Done(i, outcome, stats)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            let mut first_err = None;
            for msg in rx {
                if first_err.is_some() {
                    continue; // drain so workers exit promptly
                }
                let step = match msg {
                    Msg::Claimed(i) => journal
                        .append(&JournalEntry::Claimed {
                            index: cells[i].index as u64,
                            cell: cells[i].digest.clone(),
                        })
                        .map_err(jerr)
                        .map(|()| {
                            obs.emit("lab", "claim", cells[i].index as u64, &cells[i].digest, &[]);
                        }),
                    Msg::Done(i, outcome, stats) => {
                        exec.absorb(&stats);
                        commit(&journal, &cells[i], &outcome).map(|()| {
                            slots[i] = Some(outcome);
                        })
                    }
                };
                if let Err(e) = step {
                    stop.store(true, Ordering::SeqCst);
                    first_err = Some(e);
                }
            }
            first_err.map_or(Ok(()), Err)
        });
        result?;
        if let Some(i) = slots.iter().position(Option::is_none) {
            return Err(format!("cell {i} never reached a terminal state"));
        }
    }

    let elapsed_ms = started_at.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
    let outcomes: Vec<RunOutcome> = slots.into_iter().map(Option::unwrap).collect();
    let executed_ticks: u64 = executed
        .iter()
        .filter_map(|&i| outcomes[i].record())
        .map(|r| r.report.ticks())
        .sum();
    let run = finish_run(suite, &cells, outcomes);
    // Records are already durable (committed incrementally above); only
    // the manifest remains.
    let manifest = Manifest::from_run(&run);
    store
        .write_manifest(&manifest)
        .map_err(|e| format!("manifest write failed: {e}"))?;
    if opts.cached {
        // Telemetry sidecar, not store identity — written before the
        // `finished` line so a crash right after finalize still has it.
        // Deprecated alias: the same tallies also land in metrics.json.
        store
            .write_cache_stats(&suite_digest, &cache)
            .map_err(|e| format!("cache-stats write failed: {e}"))?;
    }
    if opts.timing {
        // Same rules as cache-stats: timing telemetry beside the
        // manifest, excluded from every byte-identity comparison.
        // Deprecated alias: the same tallies also land in metrics.json.
        let mode = opts.exec.unwrap_or_default();
        let count =
            |status: &str| run.outcomes.iter().filter(|o| o.status() == status).count() as u64;
        let stats = ExecStatsDoc::new(
            mode.label(),
            mode.workers() as u64,
            cells.len() as u64,
            executed.len() as u64,
            skipped.len() as u64,
            count("exhausted"),
            count("poisoned"),
            executed_ticks,
            elapsed_ms,
        );
        store
            .write_exec_stats(&suite_digest, &stats)
            .map_err(|e| format!("exec-stats write failed: {e}"))?;
    }
    let metrics = build_run_metrics(
        opts,
        &run,
        &cache,
        &executed,
        executed_ticks,
        exec,
        elapsed_ms,
    );
    if !metrics.is_empty() {
        store
            .write_metrics(&suite_digest, &metrics)
            .map_err(|e| format!("metrics write failed: {e}"))?;
    }
    obs.flush();
    journal
        .append(&JournalEntry::Finished {
            ok: run.all_ok(),
            seq: next_finish_seq(store),
        })
        .map_err(jerr)?;
    Ok(JournaledRun {
        run,
        manifest,
        skipped,
        executed,
        cache,
        elapsed_ms,
        executed_ticks,
        exec,
        metrics,
    })
}

/// Assemble the unified per-run metrics document ([`apex_obs::Metrics`],
/// written to `metrics.json`) from a finished run's tallies. Empty when
/// no telemetry was requested.
///
/// Namespaces, chosen so [`Metrics::result_plane`] captures exactly the
/// partition-independent slice: `cells.*` / `ticks.*` / `exec.*`
/// counters and `cells.*` gauges are deterministic functions of *what*
/// was computed (a fleet drain's merge equals the serial run's
/// aggregate), while `cache.*` coordination tallies and wall-clock
/// `time.*` describe *how this run* got there.
fn build_run_metrics(
    opts: &JournalOpts,
    run: &SuiteRun,
    cache: &CacheStats,
    executed: &[usize],
    executed_ticks: u64,
    exec: ExecStats,
    elapsed_ms: u64,
) -> Metrics {
    let mut metrics = Metrics::new();
    if !(opts.obs.metrics || opts.obs.profile || opts.cached || opts.timing) {
        return metrics;
    }
    metrics.gauge_max("cells.total", run.outcomes.len() as u64);
    metrics.add("cells.executed", executed.len() as u64);
    let count = |pred: &dyn Fn(&RunOutcome) -> bool| {
        executed.iter().filter(|&&i| pred(&run.outcomes[i])).count() as u64
    };
    metrics.add("cells.ok", count(&|o| o.ok()));
    metrics.add("cells.exhausted", count(&|o| o.status() == "exhausted"));
    metrics.add("cells.poisoned", count(&|o| o.status() == "poisoned"));
    metrics.add("ticks.executed", executed_ticks);
    metrics.add("exec.windows", exec.windows);
    metrics.add("exec.conflicts", exec.conflicts);
    metrics.add("exec.serial_reruns", exec.serial_reruns);
    metrics.gauge_max("exec.workers", exec.workers as u64);
    metrics.add("cache.hits", cache.hits);
    metrics.add("cache.misses", cache.misses);
    metrics.add("cache.rejected", cache.rejected);
    for &i in executed {
        if let Some(record) = run.outcomes[i].record() {
            metrics.observe_with("cells.ticks", &POW2_BOUNDS, record.report.ticks());
        }
    }
    if opts.timing || opts.obs.profile {
        // The only wall-clock entry — profiling plane, never compared.
        metrics.add("time.elapsed_ms", elapsed_ms);
    }
    metrics
}
