//! Executing a suite on the workspace's parallel trial runner.

use apex_bench::runner::run_trials;
use apex_scenario::ReportRecord;

use crate::suite::{Cell, Suite};

/// A pinned cell whose run produced the wrong results: the suite's
/// [`OutputExpectation`](crate::suite::OutputExpectation) disagreed with
/// the record's named outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputMismatch {
    /// Cell index in expansion order.
    pub index: usize,
    /// The cell's scenario digest.
    pub digest: String,
    /// What the suite pinned.
    pub expected: Vec<u64>,
    /// What the run produced (`None` if the record carried no outputs).
    pub actual: Option<Vec<u64>>,
}

impl std::fmt::Display for OutputMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {} ({}): expected outputs {:?}, got {:?}",
            self.index, self.digest, self.expected, self.actual
        )
    }
}

/// A completed suite execution: one [`ReportRecord`] per cell, in
/// expansion order (the runner collects results in config order, so the
/// record list is identical whether the run was serial or parallel),
/// plus any failed output assertions.
#[derive(Clone, Debug)]
pub struct SuiteRun {
    /// Suite name.
    pub name: String,
    /// Digest of the canonical suite document.
    pub suite_digest: String,
    /// One record per cell, in expansion order.
    pub records: Vec<ReportRecord>,
    /// Output assertions that failed: pinned cells whose run produced
    /// different results even though the verifier may have been clean.
    pub output_mismatches: Vec<OutputMismatch>,
}

impl SuiteRun {
    /// Number of cells whose run met its mode's correctness bar.
    pub fn ok_count(&self) -> usize {
        self.records.iter().filter(|r| r.ok()).count()
    }

    /// Whether every cell verified clean *and* every pinned output
    /// assertion held.
    pub fn all_ok(&self) -> bool {
        self.ok_count() == self.records.len() && self.output_mismatches.is_empty()
    }
}

/// Expand and execute every cell of `suite` across worker threads
/// (`APEX_RUNNER_THREADS` controls fan-out, as everywhere else).
///
/// Fails up front if the suite is ill-formed; a cell that trips its stall
/// budget panics the run (suites are trusted experiment descriptions, not
/// fuzz inputs — the synthesis oracle is the layer that sandboxes runs).
pub fn run_suite(suite: &Suite) -> Result<SuiteRun, String> {
    let cells = suite.expand()?;
    Ok(run_cells(suite, &cells))
}

/// [`run_suite`] over an already-expanded cell list (callers that need
/// the cells anyway, e.g. drift, avoid expanding twice).
pub fn run_cells(suite: &Suite, cells: &[Cell]) -> SuiteRun {
    let records = run_trials(cells, |cell| ReportRecord::run(&cell.scenario));
    // Check the suite's pinned outputs against what actually ran
    // (expansion validated that every pinned digest names a cell).
    let mut output_mismatches = Vec::new();
    for expect in &suite.expect {
        for (cell, record) in cells.iter().zip(&records) {
            if cell.digest != expect.cell {
                continue;
            }
            if record.outputs.as_deref() != Some(expect.outputs.as_slice()) {
                output_mismatches.push(OutputMismatch {
                    index: cell.index,
                    digest: cell.digest.clone(),
                    expected: expect.outputs.clone(),
                    actual: record.outputs.clone(),
                });
            }
        }
    }
    SuiteRun {
        name: suite.name.clone(),
        suite_digest: suite.digest(),
        records,
        output_mismatches,
    }
}
