//! Throughput telemetry: the per-run `exec-stats.json` sidecar and the
//! committed `BENCH_*.json` scaling artifact.
//!
//! Both documents are **telemetry, not store identity**: they carry
//! wall-clock timings, so they are excluded from every byte-identity
//! comparison (`diff -r --exclude=exec-stats.json`), ignored by drift
//! checking, and never hashed into a content address. The *result* bytes
//! of a run stay engine- and timing-independent; these files record how
//! fast those bytes were produced.
//!
//! * [`ExecStatsDoc`] — one journaled run's execution telemetry: which
//!   engine ran, how many cells executed vs were answered from cache,
//!   the terminal-state tally, and the measured ticks/s. Written by
//!   `apex suite run` when timing is requested, next to `manifest.json`.
//! * [`BenchDoc`] — a keyed collection of such measurements for one
//!   suite, accumulated across `apex suite run --bench` invocations
//!   (one row per `(exec, workers)` point). The committed artifact is
//!   what CI gates regressions against via [`BenchDoc::gate_against`].

use std::path::Path;

use apex_sim::{Json, JsonError};

/// Integer ticks-per-second from a tick count and an elapsed duration
/// (saturating; a sub-millisecond run is counted as one millisecond so
/// the rate stays finite).
fn rate(ticks: u64, elapsed_ms: u64) -> u64 {
    ticks.saturating_mul(1000) / elapsed_ms.max(1)
}

/// One journaled run's execution telemetry (`exec-stats.json`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecStatsDoc {
    /// Engine label: `serial` or `ticketed`.
    pub exec: String,
    /// Worker count the engine ran with (1 for serial).
    pub workers: u64,
    /// Total cells in the suite expansion.
    pub cells: u64,
    /// Cells actually executed this run.
    pub executed: u64,
    /// Cells answered from verified store bytes.
    pub skipped: u64,
    /// Cells that exhausted their tick budget.
    pub exhausted: u64,
    /// Cells that poisoned (panicked).
    pub poisoned: u64,
    /// Machine ticks consumed by the executed cells.
    pub ticks: u64,
    /// Wall-clock milliseconds spent executing them.
    pub elapsed_ms: u64,
    /// Throughput over the executed cells, in ticks per second.
    pub ticks_per_sec: u64,
}

impl ExecStatsDoc {
    /// Assemble a document, deriving `ticks_per_sec` from the tick count
    /// and elapsed time.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        exec: impl Into<String>,
        workers: u64,
        cells: u64,
        executed: u64,
        skipped: u64,
        exhausted: u64,
        poisoned: u64,
        ticks: u64,
        elapsed_ms: u64,
    ) -> Self {
        ExecStatsDoc {
            exec: exec.into(),
            workers,
            cells,
            executed,
            skipped,
            exhausted,
            poisoned,
            ticks,
            elapsed_ms,
            ticks_per_sec: rate(ticks, elapsed_ms),
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} (workers {}): {} ticks in {} ms — {} ticks/s",
            self.exec, self.workers, self.ticks, self.elapsed_ms, self.ticks_per_sec
        )
    }

    /// Serialize (canonical field order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("exec".into(), Json::Str(self.exec.clone())),
            ("workers".into(), Json::UInt(self.workers)),
            ("cells".into(), Json::UInt(self.cells)),
            ("executed".into(), Json::UInt(self.executed)),
            ("skipped".into(), Json::UInt(self.skipped)),
            ("exhausted".into(), Json::UInt(self.exhausted)),
            ("poisoned".into(), Json::UInt(self.poisoned)),
            ("ticks".into(), Json::UInt(self.ticks)),
            ("elapsed_ms".into(), Json::UInt(self.elapsed_ms)),
            ("ticks_per_sec".into(), Json::UInt(self.ticks_per_sec)),
        ])
    }

    /// Deserialize an exec-stats document.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ExecStatsDoc {
            exec: v.get("exec")?.as_str()?.to_string(),
            workers: v.get("workers")?.as_u64()?,
            cells: v.get("cells")?.as_u64()?,
            executed: v.get("executed")?.as_u64()?,
            skipped: v.get("skipped")?.as_u64()?,
            exhausted: v.get("exhausted")?.as_u64()?,
            poisoned: v.get("poisoned")?.as_u64()?,
            ticks: v.get("ticks")?.as_u64()?,
            elapsed_ms: v.get("elapsed_ms")?.as_u64()?,
            ticks_per_sec: v.get("ticks_per_sec")?.as_u64()?,
        })
    }

    /// Parse a complete document.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// The canonical pretty-printed document.
    pub fn render_pretty(&self) -> String {
        self.to_json().render_pretty()
    }
}

/// One measured point of a [`BenchDoc`]: how fast one
/// `(exec, workers, engine)` configuration pushed the suite's ticks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchRun {
    /// Execution-engine label: `serial` or `ticketed`.
    pub exec: String,
    /// Worker count (1 for serial).
    pub workers: u64,
    /// Scheme-interpreter engine label: `tree` or `bytecode` (kernel
    /// suites always measure `tree` — the knob does not apply to them).
    pub engine: String,
    /// Logical cores available on the measuring host (0 when unknown) —
    /// machine context for reading cross-host artifacts, never part of
    /// the row key or the gate.
    pub host_cores: u64,
    /// Cells executed for this measurement.
    pub cells: u64,
    /// Total machine ticks executed.
    pub ticks: u64,
    /// Wall-clock milliseconds.
    pub elapsed_ms: u64,
    /// Throughput in ticks per second.
    pub ticks_per_sec: u64,
}

impl BenchRun {
    /// The row's identity within a [`BenchDoc`].
    fn key(&self) -> (&str, u64, &str) {
        (self.exec.as_str(), self.workers, self.engine.as_str())
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("exec".into(), Json::Str(self.exec.clone())),
            ("workers".into(), Json::UInt(self.workers)),
            ("engine".into(), Json::Str(self.engine.clone())),
            ("host_cores".into(), Json::UInt(self.host_cores)),
            ("cells".into(), Json::UInt(self.cells)),
            ("ticks".into(), Json::UInt(self.ticks)),
            ("elapsed_ms".into(), Json::UInt(self.elapsed_ms)),
            ("ticks_per_sec".into(), Json::UInt(self.ticks_per_sec)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(BenchRun {
            exec: v.get("exec")?.as_str()?.to_string(),
            workers: v.get("workers")?.as_u64()?,
            // Pre-engine artifacts measured the tree walker on an
            // unrecorded host; default both fields accordingly.
            engine: match v.get_opt("engine") {
                None | Some(Json::Null) => "tree".to_string(),
                Some(e) => e.as_str()?.to_string(),
            },
            host_cores: match v.get_opt("host_cores") {
                None | Some(Json::Null) => 0,
                Some(x) => x.as_u64()?,
            },
            cells: v.get("cells")?.as_u64()?,
            ticks: v.get("ticks")?.as_u64()?,
            elapsed_ms: v.get("elapsed_ms")?.as_u64()?,
            ticks_per_sec: v.get("ticks_per_sec")?.as_u64()?,
        })
    }
}

/// A suite's scaling measurements, keyed by `(exec, workers, engine)` —
/// the committed `BENCH_*.json` artifact and the CI regression baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchDoc {
    /// Suite name.
    pub suite: String,
    /// Digest of the canonical suite document the measurements ran.
    pub digest: String,
    /// Measurements, sorted by `(exec, workers, engine)` for a canonical
    /// form.
    pub runs: Vec<BenchRun>,
}

impl BenchDoc {
    /// An empty artifact for one suite.
    pub fn new(suite: impl Into<String>, digest: impl Into<String>) -> Self {
        BenchDoc {
            suite: suite.into(),
            digest: digest.into(),
            runs: Vec::new(),
        }
    }

    /// Insert or replace the measurement for `run`'s
    /// `(exec, workers, engine)` key, keeping the run list sorted.
    pub fn upsert(&mut self, run: BenchRun) {
        self.runs.retain(|r| r.key() != run.key());
        self.runs.push(run);
        self.runs
            .sort_by(|a, b| (&a.exec, a.workers, &a.engine).cmp(&(&b.exec, b.workers, &b.engine)));
    }

    /// The measurement at one `(exec, workers, engine)` key.
    pub fn run(&self, exec: &str, workers: u64, engine: &str) -> Option<&BenchRun> {
        self.runs
            .iter()
            .find(|r| r.key() == (exec, workers, engine))
    }

    /// The ticketed-over-serial speedup at `workers` (tree interpreter
    /// rows), when the artifact holds both measurements (what the
    /// kernel-scaling acceptance gate reads).
    pub fn speedup(&self, workers: u64) -> Option<f64> {
        let serial = self.run("serial", 1, "tree")?;
        let ticketed = self.run("ticketed", workers, "tree")?;
        (serial.ticks_per_sec > 0)
            .then(|| ticketed.ticks_per_sec as f64 / serial.ticks_per_sec as f64)
    }

    /// The bytecode-over-tree interpreter speedup at one
    /// `(exec, workers)` point, when the artifact holds both engine rows
    /// (what the program-compile acceptance gate reads).
    pub fn engine_speedup(&self, exec: &str, workers: u64) -> Option<f64> {
        let tree = self.run(exec, workers, "tree")?;
        let bytecode = self.run(exec, workers, "bytecode")?;
        (tree.ticks_per_sec > 0).then(|| bytecode.ticks_per_sec as f64 / tree.ticks_per_sec as f64)
    }

    /// Gate this (fresh) artifact against a committed `baseline`: every
    /// `(exec, workers)` key present in both must be within `tolerance`
    /// of the baseline throughput (`fresh >= baseline * (1 - tolerance)`).
    /// Keys only one side measured are ignored — machines differ; the
    /// gate is about regressions on comparable points.
    pub fn gate_against(&self, baseline: &BenchDoc, tolerance: f64) -> Result<(), String> {
        let mut failures = Vec::new();
        for fresh in &self.runs {
            let Some(base) = baseline.run(&fresh.exec, fresh.workers, &fresh.engine) else {
                continue;
            };
            let floor = base.ticks_per_sec as f64 * (1.0 - tolerance);
            if (fresh.ticks_per_sec as f64) < floor {
                failures.push(format!(
                    "{} (workers {}, engine {}): {} ticks/s < floor {:.0} (baseline {} - {:.0}% \
                     tolerance)",
                    fresh.exec,
                    fresh.workers,
                    fresh.engine,
                    fresh.ticks_per_sec,
                    floor,
                    base.ticks_per_sec,
                    tolerance * 100.0
                ));
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(format!("bench gate failed:\n  {}", failures.join("\n  ")))
        }
    }

    /// Serialize (canonical field order, runs sorted by key).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("suite".into(), Json::Str(self.suite.clone())),
            ("digest".into(), Json::Str(self.digest.clone())),
            (
                "runs".into(),
                Json::Arr(self.runs.iter().map(BenchRun::to_json).collect()),
            ),
        ])
    }

    /// Deserialize a bench artifact.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(BenchDoc {
            suite: v.get("suite")?.as_str()?.to_string(),
            digest: v.get("digest")?.as_str()?.to_string(),
            runs: v
                .get("runs")?
                .as_arr()?
                .iter()
                .map(BenchRun::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Parse a complete artifact.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// The canonical pretty-printed artifact.
    pub fn render_pretty(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Write the artifact to `path` atomically.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        apex_scenario::atomic_write(path, &self.render_pretty())
    }

    /// Load `path` if it exists, else an empty artifact for
    /// `(suite, digest)`. A present file naming a *different* suite
    /// digest is an error — measurements of two different suites must
    /// not be merged into one artifact.
    pub fn load_or_new(path: &Path, suite: &str, digest: &str) -> Result<Self, String> {
        if !path.exists() {
            return Ok(Self::new(suite, digest));
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if doc.digest != digest {
            return Err(format!(
                "{}: artifact measures suite {} but this run is suite {digest}",
                path.display(),
                doc.digest
            ));
        }
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured(exec: &str, workers: u64, ticks_per_sec: u64) -> BenchRun {
        engine_measured(exec, workers, "tree", ticks_per_sec)
    }

    fn engine_measured(exec: &str, workers: u64, engine: &str, ticks_per_sec: u64) -> BenchRun {
        BenchRun {
            exec: exec.into(),
            workers,
            engine: engine.into(),
            host_cores: 8,
            cells: 4,
            ticks: ticks_per_sec,
            elapsed_ms: 1000,
            ticks_per_sec,
        }
    }

    #[test]
    fn exec_stats_round_trip_and_rate() {
        let doc = ExecStatsDoc::new("ticketed", 4, 10, 8, 2, 1, 0, 2_000_000, 500);
        assert_eq!(doc.ticks_per_sec, 4_000_000);
        let back = ExecStatsDoc::parse(&doc.render_pretty()).unwrap();
        assert_eq!(back, doc);
        assert!(doc.summary().contains("ticks/s"));
        // Sub-millisecond runs stay finite.
        assert_eq!(
            ExecStatsDoc::new("serial", 1, 1, 1, 0, 0, 0, 100, 0).ticks_per_sec,
            100_000
        );
    }

    #[test]
    fn bench_doc_upserts_by_key_and_round_trips() {
        let mut doc = BenchDoc::new("bench-kernel", "feedfacefeedface");
        doc.upsert(measured("ticketed", 4, 100));
        doc.upsert(measured("serial", 1, 50));
        doc.upsert(measured("ticketed", 4, 120)); // replaces, not appends
        assert_eq!(doc.runs.len(), 2);
        assert_eq!(doc.runs[0].exec, "serial"); // sorted by key
        assert_eq!(doc.run("ticketed", 4, "tree").unwrap().ticks_per_sec, 120);
        assert_eq!(doc.speedup(4), Some(2.4));
        let back = BenchDoc::parse(&doc.render_pretty()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn engine_rows_key_separately_and_legacy_artifacts_parse() {
        let mut doc = BenchDoc::new("bench-program", "feedfacefeedface");
        doc.upsert(engine_measured("serial", 1, "tree", 100));
        doc.upsert(engine_measured("serial", 1, "bytecode", 250));
        // Same (exec, workers), different engine — two distinct rows.
        assert_eq!(doc.runs.len(), 2);
        assert_eq!(doc.runs[0].engine, "bytecode"); // sorted within key
        assert_eq!(doc.engine_speedup("serial", 1), Some(2.5));
        let back = BenchDoc::parse(&doc.render_pretty()).unwrap();
        assert_eq!(back, doc);

        // Rows written before the engine fields existed parse as tree
        // measurements on an unrecorded host.
        let legacy = r#"{"suite":"b","digest":"d","runs":[{"exec":"serial",
            "workers":1,"cells":2,"ticks":10,"elapsed_ms":1,"ticks_per_sec":10000}]}"#;
        let doc = BenchDoc::parse(legacy).unwrap();
        assert_eq!(doc.runs[0].engine, "tree");
        assert_eq!(doc.runs[0].host_cores, 0);
        assert!(doc.run("serial", 1, "tree").is_some());
    }

    #[test]
    fn gate_flags_regressions_within_tolerance() {
        let mut baseline = BenchDoc::new("b", "d");
        baseline.upsert(measured("serial", 1, 1000));
        baseline.upsert(measured("ticketed", 4, 4000));

        let mut fresh = BenchDoc::new("b", "d");
        fresh.upsert(measured("serial", 1, 900));
        fresh.upsert(measured("ticketed", 4, 2300));
        fresh.upsert(measured("ticketed", 8, 1)); // no baseline key — ignored
                                                  // serial within 40%, ticketed is not (2300 < 4000 * 0.6).
        let err = fresh.gate_against(&baseline, 0.4).unwrap_err();
        assert!(err.contains("ticketed"), "{err}");
        assert!(!err.contains("serial (workers 1)"), "{err}");
        // A looser gate passes.
        fresh.gate_against(&baseline, 0.5).unwrap();
    }

    #[test]
    fn load_or_new_rejects_cross_suite_merges() {
        let dir = std::env::temp_dir().join(format!("apex-bench-doc-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_test.json");
        let mut doc = BenchDoc::new("b", "aaaaaaaaaaaaaaaa");
        doc.upsert(measured("serial", 1, 10));
        doc.save(&path).unwrap();
        let loaded = BenchDoc::load_or_new(&path, "b", "aaaaaaaaaaaaaaaa").unwrap();
        assert_eq!(loaded, doc);
        assert!(BenchDoc::load_or_new(&path, "b", "bbbbbbbbbbbbbbbb").is_err());
        let fresh = BenchDoc::load_or_new(&dir.join("absent.json"), "b", "cc").unwrap();
        assert!(fresh.runs.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
