//! The content-addressed lab results store.
//!
//! Layout (filesystem-backed, no database, diffable by hand):
//!
//! ```text
//! .apex/lab/
//!   <suite-digest>/                 one directory per suite document
//!     manifest.json                 name, digest, per-cell index
//!     journal.jsonl                 write-ahead execution journal
//!     <cell-digest>.json            one ReportRecord per completed cell
//!   quarantine/                     fsck's holding pen (never run over)
//!     <suite-digest>/<file>         corrupt files, moved — not deleted
//! ```
//!
//! Every path component is a content digest: the suite directory is the
//! FNV-1a digest of the canonical suite document, each record file the
//! digest of its canonical scenario document. Re-running the same suite
//! therefore rewrites the same files with the same bytes — anything else
//! is drift. The manifest carries no timestamps for exactly that reason:
//! two runs of one suite must be byte-identical, end to end.
//!
//! **Crash safety.** Every write goes through temp + fsync + rename
//! ([`apex_scenario::atomic_write`]), so a kill at any instant leaves
//! old bytes, new bytes, or a stale `.tmp` sibling — never a torn file
//! at a final path. Transient I/O errors are retried a bounded number of
//! times with *attempt-indexed* backoff (the delay is a pure function of
//! the attempt number, never of wall-clock readings), so a run's
//! fault-handling behavior is as reproducible as its results. A
//! [`FaultInjector`] can be installed to exercise all of this
//! deterministically — see `tests/lab_faults.rs`.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use apex_scenario::{CacheStats, ReportRecord};
use apex_sim::{Json, JsonError};

use crate::digest_hex;
use crate::fault::{FaultInjector, WriteDirective, KILL_MARKER};
use crate::runner::SuiteRun;

/// Default store root, relative to the working directory.
pub const DEFAULT_STORE_ROOT: &str = ".apex/lab";

/// Name of the quarantine directory under the store root. fsck moves
/// corrupt files here; runs, drift checks, and gc never touch it.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Bounded retry: total attempts per store write (1 initial + 3 retries).
pub const MAX_WRITE_ATTEMPTS: u32 = 4;

/// File name of the per-suite cache-stats sidecar. Like the journal,
/// this is per-run telemetry, not part of the store's content-addressed
/// identity: byte-identity comparisons exclude it (`diff -r
/// --exclude=cache-stats.json`), and drift checking ignores it.
pub const CACHE_STATS_FILE: &str = "cache-stats.json";

/// File name of the per-suite execution-stats sidecar (engine, worker
/// count, measured ticks/s). Like `cache-stats.json`, this is per-run
/// telemetry carrying wall-clock timings — never store identity:
/// byte-identity comparisons exclude it (`diff -r
/// --exclude=exec-stats.json`) and drift checking ignores it.
///
/// **Deprecated alias**: runs that request timing now also write the
/// unified [`apex_obs::METRICS_FILE`] sidecar, which subsumes this
/// document; this filename is kept for one release so existing tooling
/// keeps parsing.
pub const EXEC_STATS_FILE: &str = "exec-stats.json";

/// Every telemetry sidecar filename a suite directory may carry — the
/// *single* source of truth for byte-identity exclusion lists (CI's
/// `diff -r --exclude=…` flags are generated from this set; tests assert
/// they stay in sync). Telemetry is per-run evidence about *how* a run
/// went, never part of the store's content-addressed identity.
pub const TELEMETRY_FILES: &[&str] = &[
    crate::journal::JOURNAL_FILE,
    CACHE_STATS_FILE,
    EXEC_STATS_FILE,
    apex_obs::METRICS_FILE,
    apex_obs::TRACE_FILE,
];

/// The answer a store gives when asked for one cell's record by digest.
///
/// The cache trusts *only verified bytes*: a file at the right path that
/// fails any verification step is [`Rejected`](CacheLookup::Rejected),
/// never a hit — exactly the resume-verification path, plus the
/// manifest-row checksum when a manifest is supplied.
#[derive(Debug)]
pub enum CacheLookup {
    /// Verified bytes found: the exact file text and the parsed record.
    Hit(String, Box<ReportRecord>),
    /// No file at the cell's content address.
    Miss,
    /// Bytes present but untrustworthy; the reason they failed
    /// verification.
    Rejected(String),
}

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// One manifest row: where a cell's record lives and how the run went.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestCell {
    /// Position in the suite's expansion order.
    pub index: usize,
    /// The cell's scenario digest (also the record file stem).
    pub digest: String,
    /// Terminal state: `complete`, `exhausted`, or `poisoned`.
    pub status: String,
    /// Whether the run met its mode's correctness bar (always false for
    /// non-complete cells).
    pub ok: bool,
    /// One-line human summary of the report.
    pub summary: String,
    /// FNV-1a digest of the record file's exact bytes (`None` for cells
    /// with no record — exhausted/poisoned). Computed from the *intended*
    /// bytes at write time, so any later corruption of the file is
    /// detectable by `apex lab fsck`.
    pub checksum: Option<String>,
}

/// The per-suite index the store writes next to the records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Suite name (from the document).
    pub name: String,
    /// Digest of the canonical suite document.
    pub suite_digest: String,
    /// One row per cell, in expansion order.
    pub cells: Vec<ManifestCell>,
}

impl Manifest {
    /// Build the manifest for a completed run: one row per outcome in
    /// expansion order, record checksums computed from the canonical
    /// (intended) record bytes.
    pub fn from_run(run: &SuiteRun) -> Self {
        Manifest {
            name: run.name.clone(),
            suite_digest: run.suite_digest.clone(),
            cells: run
                .outcomes
                .iter()
                .enumerate()
                .map(|(index, outcome)| ManifestCell {
                    index,
                    digest: outcome.digest(),
                    status: outcome.status().to_string(),
                    ok: outcome.ok(),
                    summary: outcome.summary(),
                    checksum: outcome
                        .record()
                        .map(|r| digest_hex(r.render_pretty().as_bytes())),
                })
                .collect(),
        }
    }

    /// The manifest's core document, without the self-checksum field.
    fn core_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("suite_digest".into(), Json::Str(self.suite_digest.clone())),
            (
                "cells".into(),
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("index".into(), Json::UInt(c.index as u64)),
                                ("digest".into(), Json::Str(c.digest.clone())),
                                ("status".into(), Json::Str(c.status.clone())),
                                ("ok".into(), Json::Bool(c.ok)),
                                ("summary".into(), Json::Str(c.summary.clone())),
                                (
                                    "checksum".into(),
                                    c.checksum
                                        .as_ref()
                                        .map_or(Json::Null, |s| Json::Str(s.clone())),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The manifest's self-checksum: FNV-1a over the compact rendering
    /// of the core document. Emitted as the final `checksum` field and
    /// verified on read, so a bit flip anywhere in a stored manifest —
    /// including one that keeps the JSON well-formed — is detected.
    pub fn self_checksum(&self) -> String {
        digest_hex(self.core_json().render().as_bytes())
    }

    /// Serialize (canonical field order, no timestamps — deterministic).
    pub fn to_json(&self) -> Json {
        let Json::Obj(mut fields) = self.core_json() else {
            unreachable!("core_json renders an object");
        };
        fields.push(("checksum".into(), Json::Str(self.self_checksum())));
        Json::Obj(fields)
    }

    /// Deserialize, verifying the self-checksum when present (manifests
    /// written before the checksum existed are tolerated).
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let manifest = Manifest {
            name: v.get("name")?.as_str()?.to_string(),
            suite_digest: v.get("suite_digest")?.as_str()?.to_string(),
            cells: v
                .get("cells")?
                .as_arr()?
                .iter()
                .map(|c| {
                    Ok(ManifestCell {
                        index: c.get("index")?.as_usize()?,
                        digest: c.get("digest")?.as_str()?.to_string(),
                        status: match c.get_opt("status") {
                            Some(s) => s.as_str()?.to_string(),
                            None => "complete".to_string(),
                        },
                        ok: match c.get("ok")? {
                            Json::Bool(b) => *b,
                            other => return Err(jerr(format!("expected bool ok, got {other:?}"))),
                        },
                        summary: c.get("summary")?.as_str()?.to_string(),
                        checksum: match c.get_opt("checksum") {
                            None | Some(Json::Null) => None,
                            Some(s) => Some(s.as_str()?.to_string()),
                        },
                    })
                })
                .collect::<Result<_, JsonError>>()?,
        };
        if let Some(stored) = v.get_opt("checksum") {
            let stored = stored.as_str()?;
            let actual = manifest.self_checksum();
            if stored != actual {
                return Err(jerr(format!(
                    "manifest checksum {stored:?} does not match its contents (expected \
                     {actual:?}) — the file was corrupted after it was written"
                )));
            }
        }
        Ok(manifest)
    }
}

/// A filesystem-backed store of suite runs.
#[derive(Clone, Debug)]
pub struct LabStore {
    root: PathBuf,
    faults: Option<Arc<FaultInjector>>,
}

impl LabStore {
    /// A store rooted at `root` (created lazily on first write).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LabStore {
            root: root.into(),
            faults: None,
        }
    }

    /// The store at the default location, [`DEFAULT_STORE_ROOT`].
    pub fn default_location() -> Self {
        Self::new(DEFAULT_STORE_ROOT)
    }

    /// Route every write of this store through `faults` (the test-only
    /// seam for deterministic kill / torn-write / bit-flip injection).
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The installed fault injector, if any.
    pub fn faults(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The quarantine root ([`QUARANTINE_DIR`]) under this store.
    pub fn quarantine_root(&self) -> PathBuf {
        self.root.join(QUARANTINE_DIR)
    }

    /// The directory holding one suite's records.
    pub fn suite_dir(&self, suite_digest: &str) -> PathBuf {
        self.root.join(suite_digest)
    }

    /// The record path for one cell of one suite.
    pub fn record_path(&self, suite_digest: &str, cell_digest: &str) -> PathBuf {
        self.suite_dir(suite_digest)
            .join(format!("{cell_digest}.json"))
    }

    /// The manifest path of one suite.
    pub fn manifest_path(&self, suite_digest: &str) -> PathBuf {
        self.suite_dir(suite_digest).join("manifest.json")
    }

    /// The journal path of one suite.
    pub fn journal_path(&self, suite_digest: &str) -> PathBuf {
        self.suite_dir(suite_digest)
            .join(crate::journal::JOURNAL_FILE)
    }

    /// The cache-stats sidecar path of one suite.
    pub fn cache_stats_path(&self, suite_digest: &str) -> PathBuf {
        self.suite_dir(suite_digest).join(CACHE_STATS_FILE)
    }

    /// Write one suite's cache-stats sidecar durably.
    pub fn write_cache_stats(&self, suite_digest: &str, stats: &CacheStats) -> std::io::Result<()> {
        std::fs::create_dir_all(self.suite_dir(suite_digest))?;
        self.write_text(&self.cache_stats_path(suite_digest), &stats.render_pretty())
    }

    /// Load one suite's cache-stats sidecar (absent for runs that never
    /// consulted the cache).
    pub fn read_cache_stats(&self, suite_digest: &str) -> Result<CacheStats, String> {
        let path = self.cache_stats_path(suite_digest);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        CacheStats::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The exec-stats sidecar path of one suite.
    pub fn exec_stats_path(&self, suite_digest: &str) -> PathBuf {
        self.suite_dir(suite_digest).join(EXEC_STATS_FILE)
    }

    /// Write one suite's exec-stats sidecar durably.
    pub fn write_exec_stats(
        &self,
        suite_digest: &str,
        stats: &crate::bench::ExecStatsDoc,
    ) -> std::io::Result<()> {
        std::fs::create_dir_all(self.suite_dir(suite_digest))?;
        self.write_text(&self.exec_stats_path(suite_digest), &stats.render_pretty())
    }

    /// Load one suite's exec-stats sidecar (absent for runs that never
    /// requested timing).
    pub fn read_exec_stats(
        &self,
        suite_digest: &str,
    ) -> Result<crate::bench::ExecStatsDoc, String> {
        let path = self.exec_stats_path(suite_digest);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        crate::bench::ExecStatsDoc::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The unified metrics sidecar path of one suite
    /// ([`apex_obs::METRICS_FILE`]).
    pub fn metrics_path(&self, suite_digest: &str) -> PathBuf {
        self.suite_dir(suite_digest).join(apex_obs::METRICS_FILE)
    }

    /// The trace sidecar path of one suite ([`apex_obs::TRACE_FILE`]).
    pub fn trace_path(&self, suite_digest: &str) -> PathBuf {
        self.suite_dir(suite_digest).join(apex_obs::TRACE_FILE)
    }

    /// Write one suite's unified metrics sidecar durably.
    pub fn write_metrics(
        &self,
        suite_digest: &str,
        metrics: &apex_obs::Metrics,
    ) -> std::io::Result<()> {
        std::fs::create_dir_all(self.suite_dir(suite_digest))?;
        self.write_text(&self.metrics_path(suite_digest), &metrics.render_pretty())
    }

    /// Load one suite's unified metrics sidecar (absent for runs that
    /// never requested telemetry).
    pub fn read_metrics(&self, suite_digest: &str) -> Result<apex_obs::Metrics, String> {
        apex_obs::Metrics::load(&self.metrics_path(suite_digest))
    }

    /// Look up one cell's record by digest, trusting only verified bytes.
    ///
    /// Verification is the resume path from the journal runner: the file
    /// must parse (which digest-verifies the embedded scenario), the
    /// record digest must equal `cell_digest`, and the file text must be
    /// the record's canonical rendering. When `manifest` is supplied, the
    /// matching row's pinned checksum must also match the file bytes —
    /// the same invariant `apex lab fsck` enforces.
    pub fn lookup_record(
        &self,
        suite_digest: &str,
        cell_digest: &str,
        manifest: Option<&Manifest>,
    ) -> CacheLookup {
        let path = self.record_path(suite_digest, cell_digest);
        if !path.exists() {
            return CacheLookup::Miss;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => return CacheLookup::Rejected(format!("unreadable: {e}")),
        };
        let record = match ReportRecord::parse(&text) {
            Ok(r) => r,
            Err(e) => return CacheLookup::Rejected(format!("unparseable: {e}")),
        };
        if record.digest() != cell_digest {
            return CacheLookup::Rejected(format!(
                "digest mismatch: file claims scenario {}, address says {cell_digest}",
                record.digest()
            ));
        }
        if text != record.render_pretty() {
            return CacheLookup::Rejected("not the canonical rendering of its contents".into());
        }
        if let Some(manifest) = manifest {
            if let Some(row) = manifest.cells.iter().find(|c| c.digest == cell_digest) {
                if let Some(pinned) = &row.checksum {
                    let actual = digest_hex(text.as_bytes());
                    if &actual != pinned {
                        return CacheLookup::Rejected(format!(
                            "manifest pins checksum {pinned}, file bytes hash to {actual}"
                        ));
                    }
                }
            }
        }
        CacheLookup::Hit(text, Box::new(record))
    }

    /// Cross-suite cache lookup: find a verified record for
    /// `cell_digest` under *any* suite in the store (sorted suite order,
    /// first verified hit wins). Each candidate is checked against its
    /// suite's manifest when that manifest loads. This is what
    /// `apex farm query` and `apex run --cached` answer from.
    pub fn find_record(&self, cell_digest: &str) -> Option<(String, String, Box<ReportRecord>)> {
        for suite in self.suite_digests().ok()? {
            let manifest = self.read_manifest(&suite).ok();
            if let CacheLookup::Hit(text, record) =
                self.lookup_record(&suite, cell_digest, manifest.as_ref())
            {
                return Some((suite, text, record));
            }
        }
        None
    }

    /// Write `text` to `path` atomically, retrying transient I/O errors
    /// up to [`MAX_WRITE_ATTEMPTS`] times with attempt-indexed backoff
    /// (attempt *a* sleeps *a²* ms — a pure function of the attempt
    /// number, so retry behavior is deterministic). Errors carrying
    /// [`KILL_MARKER`] are fatal and never retried: a dead process
    /// cannot try again.
    pub fn write_text(&self, path: &Path, text: &str) -> std::io::Result<()> {
        let write_idx = self.faults.as_ref().map(|f| f.next_store_write());
        let mut last_err = None;
        for attempt in 0..MAX_WRITE_ATTEMPTS {
            let directive = match (&self.faults, write_idx) {
                (Some(f), Some(i)) => {
                    if f.killed() {
                        return Err(std::io::Error::other(format!(
                            "{KILL_MARKER} (process already dead)"
                        )));
                    }
                    f.directive(i, attempt)
                }
                _ => WriteDirective::Proceed,
            };
            let result = match directive {
                WriteDirective::Proceed => apex_scenario::atomic_write(path, text),
                WriteDirective::Flip { byte, mask } => {
                    // Silent corruption: the write "succeeds" with one
                    // byte XORed — only integrity checking can tell.
                    let mut bytes = text.as_bytes().to_vec();
                    if !bytes.is_empty() {
                        let i = byte.min(bytes.len() - 1);
                        bytes[i] ^= mask;
                    }
                    atomic_write_bytes(path, &bytes)
                }
                WriteDirective::Torn(keep) => {
                    // A torn write lands a prefix at the *final* path
                    // (simulating a crash without atomic-write
                    // discipline), then the process dies.
                    let keep = keep.min(text.len());
                    std::fs::write(path, &text.as_bytes()[..keep])?;
                    if let Some(f) = &self.faults {
                        f.kill();
                    }
                    return Err(std::io::Error::other(format!(
                        "{KILL_MARKER} after torn write of {}",
                        path.display()
                    )));
                }
                WriteDirective::Transient => Err(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    format!("injected fault: transient write error (attempt {attempt})"),
                )),
            };
            match result {
                Ok(()) => return Ok(()),
                Err(e) if e.to_string().contains(KILL_MARKER) => return Err(e),
                Err(e) => {
                    last_err = Some(e);
                    if attempt + 1 < MAX_WRITE_ATTEMPTS {
                        // Attempt-indexed, bounded, wall-clock-free
                        // backoff: 1 ms, 4 ms, 9 ms.
                        let ms = u64::from(attempt + 1) * u64::from(attempt + 1);
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                }
            }
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("write failed with no error")))
    }

    /// Write one cell record durably, returning the checksum of the
    /// intended bytes (what the manifest rows pin).
    pub fn write_record(
        &self,
        suite_digest: &str,
        record: &ReportRecord,
    ) -> std::io::Result<String> {
        let text = record.render_pretty();
        let checksum = digest_hex(text.as_bytes());
        self.write_text(&self.record_path(suite_digest, &record.digest()), &text)?;
        Ok(checksum)
    }

    /// Write one suite manifest durably.
    pub fn write_manifest(&self, manifest: &Manifest) -> std::io::Result<()> {
        std::fs::create_dir_all(self.suite_dir(&manifest.suite_digest))?;
        self.write_text(
            &self.manifest_path(&manifest.suite_digest),
            &manifest.to_json().render_pretty(),
        )
    }

    /// Write a completed run: every completed cell's record,
    /// content-addressed, plus the manifest. Returns the manifest.
    /// Idempotent — re-running the same suite rewrites the same files
    /// with the same bytes.
    pub fn write_run(&self, run: &SuiteRun) -> std::io::Result<Manifest> {
        let dir = self.suite_dir(&run.suite_digest);
        std::fs::create_dir_all(&dir)?;
        for outcome in &run.outcomes {
            if let Some(record) = outcome.record() {
                self.write_record(&run.suite_digest, record)?;
            }
        }
        let manifest = Manifest::from_run(run);
        self.write_manifest(&manifest)?;
        Ok(manifest)
    }

    /// Load one suite's manifest (verifying its self-checksum).
    pub fn read_manifest(&self, suite_digest: &str) -> Result<Manifest, String> {
        let path = self.manifest_path(suite_digest);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Manifest::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Load one record, returning both the raw file text (what drift
    /// compares byte-for-byte) and the parsed record.
    pub fn read_record(
        &self,
        suite_digest: &str,
        cell_digest: &str,
    ) -> Result<(String, ReportRecord), String> {
        let path = self.record_path(suite_digest, cell_digest);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let record = ReportRecord::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok((text, record))
    }

    /// The suite digests present in this store (sorted, for deterministic
    /// iteration). The quarantine directory is not a suite and is never
    /// listed.
    pub fn suite_digests(&self) -> Result<Vec<String>, String> {
        let mut out = Vec::new();
        let entries =
            std::fs::read_dir(&self.root).map_err(|e| format!("{}: {e}", self.root.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", self.root.display()))?;
            if entry.path().is_dir() {
                if let Some(name) = entry.file_name().to_str() {
                    if name != QUARANTINE_DIR {
                        out.push(name.to_string());
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// The record digests present under one suite directory (sorted; the
    /// manifest and the cache-stats/exec-stats/metrics sidecars are
    /// excluded, and the `.jsonl` journal and trace never match). Used to
    /// detect records a suite no longer names.
    pub fn record_digests(&self, suite_digest: &str) -> Result<Vec<String>, String> {
        let dir = self.suite_dir(suite_digest);
        let mut out = Vec::new();
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = entry.path();
            if path.is_dir() {
                continue;
            }
            if path.extension().is_some_and(|e| e == "json") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    if stem != "manifest"
                        && stem != "cache-stats"
                        && stem != "exec-stats"
                        && !stem.starts_with("metrics")
                    {
                        out.push(stem.to_string());
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

/// Byte-level sibling of [`apex_scenario::atomic_write`] (bit-flip
/// injection can produce non-UTF-8 content, which must still be written
/// with full temp + fsync + rename discipline).
fn atomic_write_bytes(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| std::io::Error::other(format!("{}: no file name", path.display())))?;
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}
