//! The content-addressed lab results store.
//!
//! Layout (filesystem-backed, no database, diffable by hand):
//!
//! ```text
//! .apex/lab/
//!   <suite-digest>/                 one directory per suite document
//!     manifest.json                 name, digest, per-cell index
//!     <cell-digest>.json            one ReportRecord per cell
//! ```
//!
//! Every path component is a content digest: the suite directory is the
//! FNV-1a digest of the canonical suite document, each record file the
//! digest of its canonical scenario document. Re-running the same suite
//! therefore rewrites the same files with the same bytes — anything else
//! is drift. The manifest carries no timestamps for exactly that reason:
//! two runs of one suite must be byte-identical, end to end.

use std::path::{Path, PathBuf};

use apex_scenario::ReportRecord;
use apex_sim::{Json, JsonError};

use crate::runner::SuiteRun;

/// Default store root, relative to the working directory.
pub const DEFAULT_STORE_ROOT: &str = ".apex/lab";

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// One manifest row: where a cell's record lives and how the run went.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestCell {
    /// Position in the suite's expansion order.
    pub index: usize,
    /// The cell's scenario digest (also the record file stem).
    pub digest: String,
    /// Whether the run met its mode's correctness bar.
    pub ok: bool,
    /// One-line human summary of the report.
    pub summary: String,
}

/// The per-suite index the store writes next to the records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Suite name (from the document).
    pub name: String,
    /// Digest of the canonical suite document.
    pub suite_digest: String,
    /// One row per cell, in expansion order.
    pub cells: Vec<ManifestCell>,
}

impl Manifest {
    /// Serialize (canonical field order, no timestamps — deterministic).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("suite_digest".into(), Json::Str(self.suite_digest.clone())),
            (
                "cells".into(),
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("index".into(), Json::UInt(c.index as u64)),
                                ("digest".into(), Json::Str(c.digest.clone())),
                                ("ok".into(), Json::Bool(c.ok)),
                                ("summary".into(), Json::Str(c.summary.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserialize.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Manifest {
            name: v.get("name")?.as_str()?.to_string(),
            suite_digest: v.get("suite_digest")?.as_str()?.to_string(),
            cells: v
                .get("cells")?
                .as_arr()?
                .iter()
                .map(|c| {
                    Ok(ManifestCell {
                        index: c.get("index")?.as_usize()?,
                        digest: c.get("digest")?.as_str()?.to_string(),
                        ok: match c.get("ok")? {
                            Json::Bool(b) => *b,
                            other => return Err(jerr(format!("expected bool ok, got {other:?}"))),
                        },
                        summary: c.get("summary")?.as_str()?.to_string(),
                    })
                })
                .collect::<Result<_, JsonError>>()?,
        })
    }
}

/// A filesystem-backed store of suite runs.
#[derive(Clone, Debug)]
pub struct LabStore {
    root: PathBuf,
}

impl LabStore {
    /// A store rooted at `root` (created lazily on first write).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LabStore { root: root.into() }
    }

    /// The store at the default location, [`DEFAULT_STORE_ROOT`].
    pub fn default_location() -> Self {
        Self::new(DEFAULT_STORE_ROOT)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory holding one suite's records.
    pub fn suite_dir(&self, suite_digest: &str) -> PathBuf {
        self.root.join(suite_digest)
    }

    /// The record path for one cell of one suite.
    pub fn record_path(&self, suite_digest: &str, cell_digest: &str) -> PathBuf {
        self.suite_dir(suite_digest)
            .join(format!("{cell_digest}.json"))
    }

    /// The manifest path of one suite.
    pub fn manifest_path(&self, suite_digest: &str) -> PathBuf {
        self.suite_dir(suite_digest).join("manifest.json")
    }

    /// Write a completed run: every record, content-addressed, plus the
    /// manifest. Returns the manifest. Idempotent — re-running the same
    /// suite rewrites the same files with the same bytes.
    pub fn write_run(&self, run: &SuiteRun) -> std::io::Result<Manifest> {
        let dir = self.suite_dir(&run.suite_digest);
        std::fs::create_dir_all(&dir)?;
        let mut cells = Vec::with_capacity(run.records.len());
        for (index, record) in run.records.iter().enumerate() {
            let digest = record.digest();
            record.save(&dir.join(format!("{digest}.json")))?;
            cells.push(ManifestCell {
                index,
                digest,
                ok: record.ok(),
                summary: record.report.summary(),
            });
        }
        let manifest = Manifest {
            name: run.name.clone(),
            suite_digest: run.suite_digest.clone(),
            cells,
        };
        std::fs::write(
            self.manifest_path(&run.suite_digest),
            manifest.to_json().render_pretty(),
        )?;
        Ok(manifest)
    }

    /// Load one suite's manifest.
    pub fn read_manifest(&self, suite_digest: &str) -> Result<Manifest, String> {
        let path = self.manifest_path(suite_digest);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Manifest::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Load one record, returning both the raw file text (what drift
    /// compares byte-for-byte) and the parsed record.
    pub fn read_record(
        &self,
        suite_digest: &str,
        cell_digest: &str,
    ) -> Result<(String, ReportRecord), String> {
        let path = self.record_path(suite_digest, cell_digest);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let record = ReportRecord::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok((text, record))
    }

    /// The suite digests present in this store (sorted, for deterministic
    /// iteration).
    pub fn suite_digests(&self) -> Result<Vec<String>, String> {
        let mut out = Vec::new();
        let entries =
            std::fs::read_dir(&self.root).map_err(|e| format!("{}: {e}", self.root.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", self.root.display()))?;
            if entry.path().is_dir() {
                if let Some(name) = entry.file_name().to_str() {
                    out.push(name.to_string());
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// The record digests present under one suite directory (sorted; the
    /// manifest is excluded). Used to detect records a suite no longer
    /// names.
    pub fn record_digests(&self, suite_digest: &str) -> Result<Vec<String>, String> {
        let dir = self.suite_dir(suite_digest);
        let mut out = Vec::new();
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "json") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    if stem != "manifest" {
                        out.push(stem.to_string());
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }
}
