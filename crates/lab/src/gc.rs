//! Store garbage collection (`apex lab gc`).
//!
//! Deletes whole suite directories that fall outside the keep set:
//! the `--keep-last N` most recently finished suites always stay,
//! in-flight suites (journal but no manifest yet) always stay, and the
//! `quarantine/` directory is never touched — gc reclaims space, fsck
//! owns evidence.
//!
//! "Most recently finished" is ranked by the journal's `finished`
//! sequence number (digest as tie-break), **not** by file mtime: mtimes
//! skew across workers and filesystems and are rewritten by idempotent
//! re-runs, so an mtime ranking made `--keep-last N` nondeterministic.
//! The `seq` counter is an operation clock the runs themselves maintain.

use crate::store::LabStore;

/// What one gc pass decided (and, unless dry-run, did).
#[derive(Clone, Debug, Default)]
pub struct GcReport {
    /// Suites kept, sorted by digest.
    pub kept: Vec<String>,
    /// Suites deleted (or, on dry-run, that would be), sorted by digest.
    pub deleted: Vec<String>,
    /// Whether this was a dry run (nothing was actually removed).
    pub dry_run: bool,
}

impl GcReport {
    /// One-line-per-suite deterministic summary.
    pub fn summary(&self) -> String {
        let verb = if self.dry_run {
            "would delete"
        } else {
            "deleted"
        };
        let mut out = format!(
            "gc: kept {} suites, {verb} {}",
            self.kept.len(),
            self.deleted.len()
        );
        for d in &self.deleted {
            out.push_str(&format!("\n  {verb} {d}"));
        }
        out
    }
}

/// Collect all suite directories of `store` except the `keep_last` most
/// recently finished ones. In-flight suites (journal present, manifest
/// not yet written) are never deleted, and `quarantine/` is never
/// entered. With `dry_run`, reports without removing anything.
pub fn gc(store: &LabStore, keep_last: usize, dry_run: bool) -> Result<GcReport, String> {
    let mut report = GcReport {
        dry_run,
        ..GcReport::default()
    };
    if !store.root().exists() {
        return Ok(report);
    }

    // Rank finished suites by their journal's `finished` seq (highest =
    // most recent, digest ascending as tie-break). Suites with no
    // usable journal rank at seq 0 — oldest, deleted first once the
    // keep set is full.
    let mut finished: Vec<(u64, String)> = Vec::new();
    for suite in store.suite_digests()? {
        let manifest = store.manifest_path(&suite);
        if manifest.exists() {
            finished.push((crate::journal::finish_seq(store, &suite), suite));
        } else {
            // In-flight (or junk) — a journal marks a run someone may
            // resume; without one there is still nothing safe to rank,
            // so gc leaves it alone either way.
            report.kept.push(suite);
        }
    }
    finished.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    for (rank, (_, suite)) in finished.into_iter().enumerate() {
        if rank < keep_last {
            report.kept.push(suite);
        } else {
            if !dry_run {
                let dir = store.suite_dir(&suite);
                std::fs::remove_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            }
            report.deleted.push(suite);
        }
    }
    report.kept.sort();
    report.deleted.sort();
    Ok(report)
}
