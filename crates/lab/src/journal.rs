//! The write-ahead journal for suite execution.
//!
//! One append-only JSONL file per suite directory
//! (`.apex/lab/<suite-digest>/journal.jsonl`) records the life of a run:
//! `started`, then per cell `claimed` → (`committed` | `poisoned`), then
//! `finished`. Every line is a versioned, self-contained compact-JSON
//! record, appended with a single write and fsynced, so after a crash
//! the journal is a prefix of a valid history (at worst the final line
//! is torn — [`read_journal`] tolerates exactly that and nothing else).
//!
//! Resume does **not** trust the journal for results — record files are
//! content-addressed and digest-verified independently. The journal is
//! the *intent* log: which cells a previous run claimed and how far it
//! got, so `apex suite run --resume` can report what it is skipping and
//! fsck can tell an in-flight suite directory from an abandoned one.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use apex_sim::{Json, JsonError};

use crate::fault::FaultInjector;

/// File name of the journal inside a suite directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// Major version stamped on every journal line (mismatches are rejected).
pub const JOURNAL_FORMAT_MAJOR: u64 = 1;

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// An optional string field (absent reads back as `""` — how journals
/// written before the field existed stay parseable).
fn opt_str(v: &Json, key: &str) -> Result<String, JsonError> {
    match v.get_opt(key) {
        Some(s) => Ok(s.as_str()?.to_string()),
        None => Ok(String::new()),
    }
}

/// One journal line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalEntry {
    /// A run began (fresh or resumed).
    Started {
        /// Digest of the suite being run.
        suite: String,
        /// Suite name (human context when reading journals by hand).
        name: String,
        /// Total cells in the expansion.
        cells: u64,
        /// Whether this run resumed an interrupted one.
        resumed: bool,
    },
    /// A worker took ownership of a cell (written *before* the cell
    /// runs — the write-ahead half of the protocol).
    Claimed {
        /// Cell index in expansion order.
        index: u64,
        /// The cell's scenario digest.
        cell: String,
    },
    /// A cell completed and its record file is durably on disk.
    Committed {
        /// Cell index in expansion order.
        index: u64,
        /// The cell's scenario digest.
        cell: String,
        /// Whether the run met its mode's correctness bar.
        ok: bool,
        /// Which worker committed (empty for single-runner journals,
        /// omitted on the wire). Because appends are totally ordered,
        /// the *first* terminal entry per index attributes the cell to
        /// exactly one worker — how farm metrics shards avoid counting
        /// a lease-stolen, doubly-executed cell twice.
        by: String,
    },
    /// A cell failed without a record: the scenario panicked
    /// (`status: "poisoned"`) or exhausted its tick budget
    /// (`status: "exhausted"`).
    Poisoned {
        /// Cell index in expansion order.
        index: u64,
        /// The cell's scenario digest.
        cell: String,
        /// `"poisoned"` or `"exhausted"`.
        status: String,
        /// The classified panic / exhaustion message.
        message: String,
        /// Which worker hit the failure (empty for single-runner
        /// journals, omitted on the wire; see [`JournalEntry::Committed`]).
        by: String,
    },
    /// The run completed: every cell reached a terminal state and the
    /// manifest is on disk.
    Finished {
        /// Whether every cell verified ok.
        ok: bool,
        /// Store-wide finish sequence number: one more than the highest
        /// `seq` of any `finished` entry across the store at finalize
        /// time. This is the operation clock `apex lab gc` ranks by —
        /// mtimes skew across workers and filesystems; this does not.
        /// Journals written before the field existed read back as 0.
        seq: u64,
    },
}

impl JournalEntry {
    /// The entry's `kind` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEntry::Started { .. } => "started",
            JournalEntry::Claimed { .. } => "claimed",
            JournalEntry::Committed { .. } => "committed",
            JournalEntry::Poisoned { .. } => "poisoned",
            JournalEntry::Finished { .. } => "finished",
        }
    }

    /// Serialize to one compact-JSON journal line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("v".to_string(), Json::UInt(JOURNAL_FORMAT_MAJOR)),
            ("kind".to_string(), Json::Str(self.kind().into())),
        ];
        match self {
            JournalEntry::Started {
                suite,
                name,
                cells,
                resumed,
            } => {
                fields.push(("suite".into(), Json::Str(suite.clone())));
                fields.push(("name".into(), Json::Str(name.clone())));
                fields.push(("cells".into(), Json::UInt(*cells)));
                fields.push(("resumed".into(), Json::Bool(*resumed)));
            }
            JournalEntry::Claimed { index, cell } => {
                fields.push(("index".into(), Json::UInt(*index)));
                fields.push(("cell".into(), Json::Str(cell.clone())));
            }
            JournalEntry::Committed {
                index,
                cell,
                ok,
                by,
            } => {
                fields.push(("index".into(), Json::UInt(*index)));
                fields.push(("cell".into(), Json::Str(cell.clone())));
                fields.push(("ok".into(), Json::Bool(*ok)));
                if !by.is_empty() {
                    fields.push(("by".into(), Json::Str(by.clone())));
                }
            }
            JournalEntry::Poisoned {
                index,
                cell,
                status,
                message,
                by,
            } => {
                fields.push(("index".into(), Json::UInt(*index)));
                fields.push(("cell".into(), Json::Str(cell.clone())));
                fields.push(("status".into(), Json::Str(status.clone())));
                fields.push(("message".into(), Json::Str(message.clone())));
                if !by.is_empty() {
                    fields.push(("by".into(), Json::Str(by.clone())));
                }
            }
            JournalEntry::Finished { ok, seq } => {
                fields.push(("ok".into(), Json::Bool(*ok)));
                fields.push(("seq".into(), Json::UInt(*seq)));
            }
        }
        Json::Obj(fields).render()
    }

    /// Parse one journal line.
    pub fn parse_line(line: &str) -> Result<Self, JsonError> {
        let v = Json::parse(line)?;
        let version = v.get("v")?.as_u64()?;
        if version != JOURNAL_FORMAT_MAJOR {
            return Err(jerr(format!(
                "unsupported journal version {version} (this build reads {JOURNAL_FORMAT_MAJOR})"
            )));
        }
        let bool_field = |key: &str| -> Result<bool, JsonError> {
            match v.get(key)? {
                Json::Bool(b) => Ok(*b),
                other => Err(jerr(format!("expected bool {key}, got {other:?}"))),
            }
        };
        match v.get("kind")?.as_str()? {
            "started" => Ok(JournalEntry::Started {
                suite: v.get("suite")?.as_str()?.to_string(),
                name: v.get("name")?.as_str()?.to_string(),
                cells: v.get("cells")?.as_u64()?,
                resumed: bool_field("resumed")?,
            }),
            "claimed" => Ok(JournalEntry::Claimed {
                index: v.get("index")?.as_u64()?,
                cell: v.get("cell")?.as_str()?.to_string(),
            }),
            "committed" => Ok(JournalEntry::Committed {
                index: v.get("index")?.as_u64()?,
                cell: v.get("cell")?.as_str()?.to_string(),
                ok: bool_field("ok")?,
                by: opt_str(&v, "by")?,
            }),
            "poisoned" => Ok(JournalEntry::Poisoned {
                index: v.get("index")?.as_u64()?,
                cell: v.get("cell")?.as_str()?.to_string(),
                status: v.get("status")?.as_str()?.to_string(),
                message: v.get("message")?.as_str()?.to_string(),
                by: opt_str(&v, "by")?,
            }),
            "finished" => Ok(JournalEntry::Finished {
                ok: bool_field("ok")?,
                seq: match v.get_opt("seq") {
                    Some(s) => s.as_u64()?,
                    None => 0,
                },
            }),
            other => Err(jerr(format!("unknown journal entry kind {other:?}"))),
        }
    }
}

/// An append-only journal writer bound to one file, optionally gated by
/// a [`FaultInjector`] (each append asks the injector first, so a plan
/// can kill the process at any journal boundary).
#[derive(Clone, Debug)]
pub struct Journal {
    path: PathBuf,
    faults: Option<Arc<FaultInjector>>,
}

impl Journal {
    /// A journal at `path` (the file is created on first append).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Journal {
            path: path.into(),
            faults: None,
        }
    }

    /// Gate every append through `faults`.
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one entry durably: a single `write` of the full line plus
    /// newline, then fsync — a crash between appends never tears an
    /// earlier line.
    pub fn append(&self, entry: &JournalEntry) -> std::io::Result<()> {
        if let Some(f) = &self.faults {
            f.on_journal_append().map_err(std::io::Error::other)?;
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(format!("{}\n", entry.to_line()).as_bytes())?;
        file.sync_all()
    }
}

/// The replayed state of a journal: which cells reached which terminal
/// state, plus bookkeeping resume and fsck ask about.
#[derive(Clone, Debug, Default)]
pub struct JournalState {
    /// Every entry, in file order.
    pub entries: Vec<JournalEntry>,
    /// Indices with a `claimed` entry.
    pub claimed: Vec<u64>,
    /// Indices with a `committed` entry.
    pub committed: Vec<u64>,
    /// Indices with a `poisoned` entry.
    pub poisoned: Vec<u64>,
    /// Whether a `finished` entry is present.
    pub finished: bool,
    /// Highest `seq` among `finished` entries (0 when none, or for
    /// journals from before the field existed).
    pub finish_seq: u64,
    /// Whether the final line was torn (unparseable — the one corruption
    /// a crash during append can produce; tolerated and reported).
    pub torn_tail: bool,
}

/// The finish sequence number of one suite: the highest `finished` seq
/// in its journal, or 0 when the suite has no journal, an unreadable
/// one, or no `finished` entry. Never an error — gc and fsck must rank
/// whatever is actually on disk.
pub fn finish_seq(store: &crate::store::LabStore, suite_digest: &str) -> u64 {
    read_journal(&store.journal_path(suite_digest))
        .map(|s| s.finish_seq)
        .unwrap_or(0)
}

/// The next finish sequence number for a run finalizing now: one more
/// than the highest `finished` seq across every suite in the store.
/// This scan is what gives `finished` entries a store-wide total order
/// without wall-clock timestamps.
pub fn next_finish_seq(store: &crate::store::LabStore) -> u64 {
    let suites = store.suite_digests().unwrap_or_default();
    1 + suites
        .iter()
        .map(|s| finish_seq(store, s))
        .max()
        .unwrap_or(0)
}

/// Read and replay a journal file. A torn **final** line is tolerated
/// (`torn_tail` is set); a corrupt line anywhere else is an error — the
/// append discipline cannot produce one, so it means real tampering.
pub fn read_journal(path: &Path) -> Result<JournalState, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut state = JournalState::default();
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match JournalEntry::parse_line(line) {
            Ok(entry) => {
                match &entry {
                    JournalEntry::Claimed { index, .. } => state.claimed.push(*index),
                    JournalEntry::Committed { index, .. } => state.committed.push(*index),
                    JournalEntry::Poisoned { index, .. } => state.poisoned.push(*index),
                    JournalEntry::Finished { seq, .. } => {
                        state.finished = true;
                        state.finish_seq = state.finish_seq.max(*seq);
                    }
                    JournalEntry::Started { .. } => {}
                }
                state.entries.push(entry);
            }
            Err(e) if i + 1 == lines.len() => {
                state.torn_tail = true;
                let _ = e; // a torn tail is expected after a mid-append crash
            }
            Err(e) => {
                return Err(format!(
                    "{}:{}: corrupt journal line: {e}",
                    path.display(),
                    i + 1
                ));
            }
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<JournalEntry> {
        vec![
            JournalEntry::Started {
                suite: "0123456789abcdef".into(),
                name: "smoke".into(),
                cells: 3,
                resumed: false,
            },
            JournalEntry::Claimed {
                index: 0,
                cell: "aaaaaaaaaaaaaaaa".into(),
            },
            JournalEntry::Committed {
                index: 0,
                cell: "aaaaaaaaaaaaaaaa".into(),
                ok: true,
                by: String::new(),
            },
            JournalEntry::Claimed {
                index: 1,
                cell: "bbbbbbbbbbbbbbbb".into(),
            },
            JournalEntry::Poisoned {
                index: 1,
                cell: "bbbbbbbbbbbbbbbb".into(),
                status: "poisoned".into(),
                message: "injected fault: cell panic".into(),
                by: "w1".into(),
            },
            JournalEntry::Finished { ok: false, seq: 7 },
        ]
    }

    fn temp_journal(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("apex-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(JOURNAL_FILE)
    }

    #[test]
    fn entries_round_trip_through_lines() {
        for entry in sample_entries() {
            let line = entry.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(JournalEntry::parse_line(&line).unwrap(), entry);
        }
    }

    #[test]
    fn append_then_replay_recovers_the_history() {
        let path = temp_journal("replay");
        let journal = Journal::new(&path);
        for entry in sample_entries() {
            journal.append(&entry).unwrap();
        }
        let state = read_journal(&path).unwrap();
        assert_eq!(state.entries, sample_entries());
        assert_eq!(state.claimed, vec![0, 1]);
        assert_eq!(state.committed, vec![0]);
        assert_eq!(state.poisoned, vec![1]);
        assert!(state.finished);
        assert_eq!(state.finish_seq, 7);
        assert!(!state.torn_tail);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_is_tolerated_inner_corruption_is_not() {
        let path = temp_journal("torn");
        let journal = Journal::new(&path);
        for entry in &sample_entries()[..3] {
            journal.append(entry).unwrap();
        }
        // Tear the tail: append half a line without newline discipline.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"v\":1,\"kind\":\"clai");
        std::fs::write(&path, &text).unwrap();
        let state = read_journal(&path).unwrap();
        assert!(state.torn_tail);
        assert_eq!(state.entries.len(), 3);

        // Corrupt an inner line: hard error.
        let broken = text.replacen("\"kind\":\"claimed\"", "\"kind\":\"cl", 1);
        std::fs::write(&path, broken).unwrap();
        let err = read_journal(&path).unwrap_err();
        assert!(err.contains("corrupt journal line"), "{err}");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn fault_injected_appends_kill_at_the_boundary() {
        use crate::fault::{is_kill, FaultInjector, FaultPlan};
        let path = temp_journal("kill");
        let inj = Arc::new(FaultInjector::new(FaultPlan {
            kill_after_journal: Some(2),
            ..FaultPlan::default()
        }));
        let journal = Journal::new(&path).with_faults(inj);
        let entries = sample_entries();
        journal.append(&entries[0]).unwrap();
        journal.append(&entries[1]).unwrap();
        let err = journal.append(&entries[2]).unwrap_err();
        assert!(is_kill(&err.to_string()), "{err}");
        // Exactly two durable lines; replay sees a clean prefix.
        let state = read_journal(&path).unwrap();
        assert_eq!(state.entries.len(), 2);
        assert!(!state.torn_tail);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
