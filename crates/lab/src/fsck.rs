//! Store integrity checking (`apex lab fsck`).
//!
//! Scans every suite directory of a [`LabStore`] and classifies each
//! file against the store's own invariants: records must parse, sit at
//! their content address, be byte-identical to their canonical
//! rendering, and match the checksum their manifest row pinned at write
//! time; manifests must parse and pass their self-checksum; journals
//! must replay (a torn final line is legal — that is what a crash looks
//! like); nothing may be left at a `.tmp` path. With `repair`, bad
//! files are **moved** to `quarantine/<suite-digest>/` — fsck never
//! deletes data, so a false positive costs a `mv` back, not evidence.
//!
//! **Leases are the one exception to quarantine.** Farm shard leases
//! (`leases/shard-<k>.json`) are disposable coordination hints — record
//! writes are idempotent, so no lease ever guards data. Torn leases,
//! stale leases (run finished, or expired on the journal's operation
//! clock), and orphaned claims (no usable journal, wrong suite, or a
//! cell range the suite does not have) are therefore **reclaimed**
//! (deleted) on repair, never quarantined. A live, unexpired lease in an
//! in-flight suite is healthy and untouched.

use std::path::{Path, PathBuf};

use apex_scenario::{CacheStats, ReportRecord};
use apex_sim::Json;

use crate::digest_hex;
use crate::journal::{read_journal, JournalEntry, JournalState, JOURNAL_FILE};
use crate::store::{LabStore, CACHE_STATS_FILE, EXEC_STATS_FILE};

/// What is wrong with one file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsckIssueKind {
    /// The file is not parseable JSON — a torn or truncated write (or
    /// arbitrary corruption severe enough to break the syntax).
    TornOrTruncated,
    /// The record parses but fails digest verification: the stored
    /// digest disagrees with the embedded scenario, or the file sits at
    /// an address that is not its own digest.
    DigestMismatch,
    /// The record parses and digest-verifies, but its bytes are not the
    /// canonical rendering (whitespace/field-order tampering).
    NotCanonical,
    /// The record's bytes do not match the checksum its manifest row
    /// pinned at write time — a silent post-write corruption (bit flip)
    /// that left the JSON well-formed.
    ChecksumMismatch,
    /// A record file its manifest does not name.
    Orphan,
    /// A manifest row claims a completed record whose file is missing.
    MissingRecord,
    /// The manifest is unreadable (not valid JSON / not a manifest).
    ManifestUnreadable,
    /// The manifest fails its self-checksum.
    ManifestChecksum,
    /// No manifest, and no journal explaining why (an in-flight run has
    /// a journal; a finished one has a manifest; neither is neither).
    ManifestMissing,
    /// The journal has a corrupt line before its final one.
    JournalCorrupt,
    /// A stale `.tmp` sibling left by an interrupted atomic write.
    StaleTemp,
    /// A lease file that does not parse — a crashed worker's torn claim
    /// write. Reclaimed, never quarantined.
    LeaseTorn,
    /// A parseable lease whose claim has lapsed: the run finished, or
    /// the journal's operation clock passed `issued_at + ttl`. Reclaimed.
    LeaseStale,
    /// A lease that cannot belong to its suite: no usable journal, a
    /// `suite` field naming a different digest, or a cell range outside
    /// the suite's expansion. Reclaimed.
    LeaseOrphan,
}

impl std::fmt::Display for FsckIssueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FsckIssueKind::TornOrTruncated => "torn/truncated",
            FsckIssueKind::DigestMismatch => "digest mismatch",
            FsckIssueKind::NotCanonical => "not canonical",
            FsckIssueKind::ChecksumMismatch => "checksum mismatch",
            FsckIssueKind::Orphan => "orphan",
            FsckIssueKind::MissingRecord => "missing record",
            FsckIssueKind::ManifestUnreadable => "manifest unreadable",
            FsckIssueKind::ManifestChecksum => "manifest checksum",
            FsckIssueKind::ManifestMissing => "manifest missing",
            FsckIssueKind::JournalCorrupt => "journal corrupt",
            FsckIssueKind::StaleTemp => "stale temp file",
            FsckIssueKind::LeaseTorn => "torn lease",
            FsckIssueKind::LeaseStale => "stale lease",
            FsckIssueKind::LeaseOrphan => "orphaned lease",
        })
    }
}

/// One problematic file.
#[derive(Clone, Debug)]
pub struct FsckIssue {
    /// Suite digest the file belongs to.
    pub suite: String,
    /// File name within the suite directory (empty for suite-level
    /// issues such as a missing manifest).
    pub file: String,
    /// Classification.
    pub kind: FsckIssueKind,
    /// Human-readable detail.
    pub detail: String,
    /// Whether repair moved the file to quarantine.
    pub quarantined: bool,
    /// Whether repair reclaimed (deleted) the file — lease issues only;
    /// leases are disposable and never quarantined.
    pub reclaimed: bool,
}

impl std::fmt::Display for FsckIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: {} — {}{}{}",
            self.suite,
            if self.file.is_empty() {
                "."
            } else {
                &self.file
            },
            self.kind,
            self.detail,
            if self.quarantined {
                " [quarantined]"
            } else {
                ""
            },
            if self.reclaimed { " [reclaimed]" } else { "" }
        )
    }
}

/// The typed result of one fsck pass.
#[derive(Clone, Debug, Default)]
pub struct FsckReport {
    /// Suite directories scanned.
    pub suites: usize,
    /// Files examined.
    pub files_checked: usize,
    /// Every issue found, sorted by (suite, file).
    pub issues: Vec<FsckIssue>,
}

impl FsckReport {
    /// No issues anywhere.
    pub fn clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Multi-line human summary (deterministic order).
    pub fn summary(&self) -> String {
        if self.clean() {
            format!(
                "fsck: {} suites, {} files — clean",
                self.suites, self.files_checked
            )
        } else {
            let mut out = format!(
                "fsck: {} suites, {} files — {} ISSUES\n",
                self.suites,
                self.files_checked,
                self.issues.len()
            );
            for issue in &self.issues {
                out.push_str(&format!("  {issue}\n"));
            }
            out.pop();
            out
        }
    }
}

/// Scan `store` for integrity violations. With `repair`, every bad
/// *file* is moved (never deleted) to `quarantine/<suite-digest>/`;
/// issues without a file to move (e.g. [`FsckIssueKind::MissingRecord`])
/// are reported only. Idempotent: a second repair pass finds nothing
/// new and moves nothing.
pub fn fsck(store: &LabStore, repair: bool) -> Result<FsckReport, String> {
    let mut report = FsckReport::default();
    if !store.root().exists() {
        return Ok(report); // an empty store is a clean store
    }
    for suite in store.suite_digests()? {
        report.suites += 1;
        scan_suite(store, &suite, repair, &mut report)?;
    }
    report
        .issues
        .sort_by(|a, b| (&a.suite, &a.file).cmp(&(&b.suite, &b.file)));
    Ok(report)
}

fn scan_suite(
    store: &LabStore,
    suite: &str,
    repair: bool,
    report: &mut FsckReport,
) -> Result<(), String> {
    let dir = store.suite_dir(suite);
    let mut issue = |file: &str, kind: FsckIssueKind, detail: String, quarantined: bool| {
        report.issues.push(FsckIssue {
            suite: suite.to_string(),
            file: file.to_string(),
            kind,
            detail,
            quarantined,
            reclaimed: false,
        });
    };

    // Journal: replay; only inner corruption is an issue. The replayed
    // state doubles as the operation clock the lease scan judges expiry
    // against.
    let journal_path = store.journal_path(suite);
    let has_journal = journal_path.exists();
    let mut journal_state: Option<JournalState> = None;
    if has_journal {
        report.files_checked += 1;
        match read_journal(&journal_path) {
            Ok(state) => journal_state = Some(state),
            Err(e) => {
                let quarantined = repair && quarantine(store, suite, &journal_path)?;
                issue(JOURNAL_FILE, FsckIssueKind::JournalCorrupt, e, quarantined);
            }
        }
    }

    // Manifest: parse + self-checksum. An in-flight run (journal, no
    // manifest) is legal; a directory with neither is not.
    let manifest_path = store.manifest_path(suite);
    let manifest = if manifest_path.exists() {
        report.files_checked += 1;
        let text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
        match Json::parse(&text) {
            Err(e) => {
                let quarantined = repair && quarantine(store, suite, &manifest_path)?;
                issue(
                    "manifest.json",
                    FsckIssueKind::ManifestUnreadable,
                    format!("not parseable JSON: {e}"),
                    quarantined,
                );
                None
            }
            Ok(json) => match crate::store::Manifest::from_json(&json) {
                Ok(m) => Some(m),
                Err(e) => {
                    let kind = if e.msg.contains("checksum") {
                        FsckIssueKind::ManifestChecksum
                    } else {
                        FsckIssueKind::ManifestUnreadable
                    };
                    let quarantined = repair && quarantine(store, suite, &manifest_path)?;
                    issue("manifest.json", kind, e.msg, quarantined);
                    None
                }
            },
        }
    } else {
        if !has_journal {
            issue(
                "",
                FsckIssueKind::ManifestMissing,
                "no manifest and no journal — not a suite run".to_string(),
                false,
            );
        }
        None
    };

    // Record files.
    let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    files.sort();
    let mut present: Vec<String> = Vec::new();
    let mut corrupt: Vec<String> = Vec::new();
    for path in files {
        let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        if name.ends_with(".tmp") {
            report.files_checked += 1;
            let quarantined = repair && quarantine(store, suite, &path)?;
            issue(
                &name,
                FsckIssueKind::StaleTemp,
                "leftover from an interrupted atomic write".to_string(),
                quarantined,
            );
            continue;
        }
        // `metrics.json` plus the farm's per-worker `metrics-<id>.json`
        // shards all carry the same unified document.
        let is_metrics = name.starts_with("metrics") && name.ends_with(".json");
        if name == CACHE_STATS_FILE || name == EXEC_STATS_FILE || is_metrics {
            // Telemetry sidecars: not store identity, but they should
            // still parse — an unreadable one is debris worth
            // quarantining.
            report.files_checked += 1;
            let parse = std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| {
                    if name == CACHE_STATS_FILE {
                        CacheStats::parse(&text)
                            .map(drop)
                            .map_err(|e| e.to_string())
                    } else if name == EXEC_STATS_FILE {
                        crate::bench::ExecStatsDoc::parse(&text)
                            .map(drop)
                            .map_err(|e| e.to_string())
                    } else {
                        apex_obs::Metrics::parse(&text)
                            .map(drop)
                            .map_err(|e| e.to_string())
                    }
                });
            if let Err(e) = parse {
                let quarantined = repair && quarantine(store, suite, &path)?;
                issue(
                    &name,
                    FsckIssueKind::TornOrTruncated,
                    format!("{name} sidecar unreadable: {e}"),
                    quarantined,
                );
            }
            continue;
        }
        if name == "manifest.json" || name == JOURNAL_FILE || !name.ends_with(".json") {
            continue;
        }
        report.files_checked += 1;
        let stem = name.trim_end_matches(".json").to_string();
        let bytes = std::fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let (kind, detail) = match check_record(&stem, &bytes, manifest.as_ref()) {
            Ok(()) => {
                present.push(stem);
                continue;
            }
            Err(pair) => pair,
        };
        corrupt.push(stem);
        let quarantined = repair && quarantine(store, suite, &path)?;
        issue(&name, kind, detail, quarantined);
    }

    // Manifest rows whose completed record is gone (no file to move —
    // report only; the fix is a re-run, which resume makes cheap). A
    // record already reported corrupt this pass is one issue, not two.
    if let Some(m) = &manifest {
        for cell in &m.cells {
            if cell.status == "complete"
                && !present.contains(&cell.digest)
                && !corrupt.contains(&cell.digest)
            {
                issue(
                    &format!("{}.json", cell.digest),
                    FsckIssueKind::MissingRecord,
                    format!(
                        "manifest cell {} claims a completed record that is absent",
                        cell.index
                    ),
                    false,
                );
            }
        }
        // Records the manifest does not name.
        for stem in &present {
            if !m.cells.iter().any(|c| &c.digest == stem) {
                let path = store.record_path(suite, stem);
                let quarantined = repair && quarantine(store, suite, &path)?;
                report.issues.push(FsckIssue {
                    suite: suite.to_string(),
                    file: format!("{stem}.json"),
                    kind: FsckIssueKind::Orphan,
                    detail: "record not named by the manifest".to_string(),
                    quarantined,
                    reclaimed: false,
                });
            }
        }
    }

    scan_leases(store, suite, journal_state.as_ref(), repair, report)?;
    Ok(())
}

/// Classify every lease file of one suite. Bad leases are *reclaimed*
/// (deleted) on repair — they are coordination hints, not data. The
/// expiry judgment uses the journal's parsed entry count as the
/// operation clock, exactly as workers do.
fn scan_leases(
    store: &LabStore,
    suite: &str,
    journal: Option<&JournalState>,
    repair: bool,
    report: &mut FsckReport,
) -> Result<(), String> {
    let leases = crate::lease::read_leases(store, suite)?;
    if leases.is_empty() {
        if repair {
            crate::lease::remove_lease_dir_if_empty(store, suite);
        }
        return Ok(());
    }
    let journal_len = journal.map(|s| s.entries.len() as u64);
    let suite_cells = journal.and_then(|s| {
        s.entries.iter().find_map(|e| match e {
            JournalEntry::Started { cells, .. } => Some(*cells),
            _ => None,
        })
    });
    for (path, parsed) in leases {
        report.files_checked += 1;
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("lease")
            .to_string();
        let file = format!("{}/{name}", crate::lease::LEASE_DIR);
        let (kind, detail) = match &parsed {
            Err(e) => (FsckIssueKind::LeaseTorn, format!("unparseable claim: {e}")),
            Ok(lease) if lease.suite != suite => (
                FsckIssueKind::LeaseOrphan,
                format!("claims suite {}, filed under {suite}", lease.suite),
            ),
            Ok(lease) => match (journal_len, suite_cells) {
                (None, _) => (
                    FsckIssueKind::LeaseOrphan,
                    "no usable journal — nothing was ever claimed here".to_string(),
                ),
                (Some(_), Some(cells)) if lease.start.saturating_add(lease.count) > cells => (
                    FsckIssueKind::LeaseOrphan,
                    format!(
                        "shard covers cells {}..{} but the suite has {cells}",
                        lease.start,
                        lease.start + lease.count
                    ),
                ),
                (Some(len), _) if journal.is_some_and(|s| s.finished) => (
                    FsckIssueKind::LeaseStale,
                    format!("the run already finished (journal length {len})"),
                ),
                (Some(len), _) if lease.expired(len) => (
                    FsckIssueKind::LeaseStale,
                    format!(
                        "expired on the operation clock: issued at {} + ttl {} <= {len}",
                        lease.issued_at, lease.ttl
                    ),
                ),
                _ => continue, // live, unexpired claim in an in-flight run
            },
        };
        let reclaimed = if repair {
            std::fs::remove_file(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            true
        } else {
            false
        };
        report.issues.push(FsckIssue {
            suite: suite.to_string(),
            file,
            kind,
            detail,
            quarantined: false,
            reclaimed,
        });
    }
    if repair {
        crate::lease::remove_lease_dir_if_empty(store, suite);
    }
    Ok(())
}

/// Check one record file's full invariant stack. `Ok(())` means healthy.
fn check_record(
    stem: &str,
    bytes: &[u8],
    manifest: Option<&crate::store::Manifest>,
) -> Result<(), (FsckIssueKind, String)> {
    let text = std::str::from_utf8(bytes).map_err(|e| {
        (
            FsckIssueKind::TornOrTruncated,
            format!("not UTF-8 at byte {}", e.valid_up_to()),
        )
    })?;
    let json = Json::parse(text)
        .map_err(|e| (FsckIssueKind::TornOrTruncated, format!("not JSON: {e}")))?;
    let record = ReportRecord::from_json(&json).map_err(|e| {
        let kind = if e.msg.contains("digest") {
            FsckIssueKind::DigestMismatch
        } else {
            FsckIssueKind::TornOrTruncated
        };
        (kind, e.msg)
    })?;
    if record.digest() != stem {
        return Err((
            FsckIssueKind::DigestMismatch,
            format!("record {} filed at address {stem}", record.digest()),
        ));
    }
    if text != record.render_pretty() {
        return Err((
            FsckIssueKind::NotCanonical,
            "bytes are not the canonical rendering".to_string(),
        ));
    }
    if let Some(m) = manifest {
        if let Some(cell) = m.cells.iter().find(|c| c.digest == stem) {
            if let Some(expect) = &cell.checksum {
                let actual = digest_hex(bytes);
                if &actual != expect {
                    return Err((
                        FsckIssueKind::ChecksumMismatch,
                        format!("file checksum {actual} != pinned {expect}"),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Move `path` into `quarantine/<suite>/`, never deleting content: if an
/// identical copy is already quarantined the source is simply removed
/// (the bytes are preserved), and a *different* file with the same name
/// gets a numeric suffix. Returns whether the file is gone from the
/// suite directory.
fn quarantine(store: &LabStore, suite: &str, path: &Path) -> Result<bool, String> {
    let qdir = store.quarantine_root().join(suite);
    std::fs::create_dir_all(&qdir).map_err(|e| format!("{}: {e}", qdir.display()))?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| format!("{}: no file name", path.display()))?;
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut dest = qdir.join(name);
    let mut n = 0u32;
    loop {
        if !dest.exists() {
            break;
        }
        if std::fs::read(&dest).map_err(|e| format!("{}: {e}", dest.display()))? == bytes {
            // Identical bytes already preserved — dropping the source
            // loses nothing.
            std::fs::remove_file(path).map_err(|e| format!("{}: {e}", path.display()))?;
            return Ok(true);
        }
        n += 1;
        dest = qdir.join(format!("{name}.{n}"));
    }
    std::fs::rename(path, &dest)
        .map_err(|e| format!("quarantine {} -> {}: {e}", path.display(), dest.display()))?;
    Ok(true)
}
