//! Drift detection: a stored suite run is ground truth, and any
//! byte-level difference on re-execution is a real regression.
//!
//! The whole pipeline below the store is deterministic — seeded sources,
//! oblivious schedules, canonical JSON — so the strongest possible check
//! is also the simplest: render the fresh record and `==` the stored
//! bytes. When bytes differ, the parsed JSON trees are diffed to name the
//! paths that moved (verdict, work counters, final memory, …) so a drift
//! report reads like a regression report, not a checksum mismatch.

use apex_sim::Json;

use crate::runner::run_cells;
use crate::store::LabStore;
use crate::suite::Suite;

/// What kind of divergence a cell showed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftKind {
    /// The store has no record at the cell's address (deleted, or the
    /// scenario changed and now hashes elsewhere).
    MissingRecord,
    /// The store holds a record the suite no longer names.
    ExtraRecord,
    /// Stored and fresh record bytes differ.
    RecordDiffers,
    /// The manifest disagrees with the records next to it.
    ManifestMismatch,
}

impl std::fmt::Display for DriftKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DriftKind::MissingRecord => "missing record",
            DriftKind::ExtraRecord => "extra record",
            DriftKind::RecordDiffers => "record differs",
            DriftKind::ManifestMismatch => "manifest mismatch",
        })
    }
}

/// One divergent cell.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The cell's scenario digest (record address).
    pub cell: String,
    /// Position in the suite's expansion order, when the cell is named by
    /// the suite (extra records are not).
    pub index: Option<usize>,
    /// Divergence class.
    pub kind: DriftKind,
    /// Human-readable detail (differing JSON paths, file errors).
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.index {
            Some(i) => write!(
                f,
                "cell {i} ({}): {} — {}",
                self.cell, self.kind, self.detail
            ),
            None => write!(f, "record {}: {} — {}", self.cell, self.kind, self.detail),
        }
    }
}

/// Outcome of a drift check.
#[derive(Clone, Debug)]
pub struct DriftReport {
    /// Digest of the suite that was checked.
    pub suite_digest: String,
    /// Cells compared (suite cells plus extra stored records).
    pub checked: usize,
    /// Every divergence found, in cell order.
    pub divergences: Vec<Divergence>,
}

impl DriftReport {
    /// No divergence anywhere.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Multi-line human summary.
    pub fn summary(&self) -> String {
        if self.clean() {
            format!(
                "drift: {} cells checked vs {} — no divergence",
                self.checked, self.suite_digest
            )
        } else {
            let mut out = format!(
                "drift: {} cells checked vs {} — {} DIVERGENCES\n",
                self.checked,
                self.suite_digest,
                self.divergences.len()
            );
            for d in &self.divergences {
                out.push_str(&format!("  {d}\n"));
            }
            out.pop();
            out
        }
    }
}

/// Re-run `suite` and compare every fresh record against `store`,
/// byte-for-byte. Also cross-checks the stored manifest and flags stored
/// records the suite no longer names.
pub fn check_against_store(suite: &Suite, store: &LabStore) -> Result<DriftReport, String> {
    let cells = suite.expand()?;
    let suite_digest = suite.digest();
    let manifest = store.read_manifest(&suite_digest).map_err(|e| {
        format!("no stored run for suite {suite_digest} (run `apex suite run` first): {e}")
    })?;
    let fresh = run_cells(suite, &cells);

    let mut divergences = Vec::new();
    for (cell, outcome) in cells.iter().zip(&fresh.outcomes) {
        let path = store.record_path(&suite_digest, &cell.digest);
        let Some(record) = outcome.record() else {
            // The fresh run did not complete this cell (exhausted or
            // poisoned). A stored record at its address then *is* drift
            // — the stored run completed where this one cannot. No
            // stored record is the consistent state.
            if path.exists() {
                divergences.push(Divergence {
                    cell: cell.digest.clone(),
                    index: Some(cell.index),
                    kind: DriftKind::RecordDiffers,
                    detail: format!(
                        "stored record exists but the fresh run did not complete ({})",
                        outcome.summary()
                    ),
                });
            }
            continue;
        };
        let fresh_text = record.render_pretty();
        // Compare raw bytes, not parsed records: a present-but-corrupt
        // file is drift of the "differs" kind, and only a genuinely
        // absent file is "missing".
        match std::fs::read_to_string(&path) {
            Err(e) => divergences.push(Divergence {
                cell: cell.digest.clone(),
                index: Some(cell.index),
                kind: DriftKind::MissingRecord,
                detail: format!("{}: {e}", path.display()),
            }),
            Ok(stored_text) if stored_text == fresh_text => {}
            Ok(stored_text) => {
                let detail = match (Json::parse(&stored_text), Json::parse(&fresh_text)) {
                    (Ok(stored), Ok(fresh)) => {
                        let diffs = json_diff(&stored, &fresh, 4);
                        if diffs.is_empty() {
                            // Same tree, different bytes: whitespace or
                            // field-order tampering.
                            "stored bytes are not the canonical rendering".to_string()
                        } else {
                            diffs.join("; ")
                        }
                    }
                    _ => "stored record is not parseable JSON".to_string(),
                };
                divergences.push(Divergence {
                    cell: cell.digest.clone(),
                    index: Some(cell.index),
                    kind: DriftKind::RecordDiffers,
                    detail,
                });
            }
        }
    }

    // Stored records the suite no longer names.
    let named: std::collections::HashSet<&str> = cells.iter().map(|c| c.digest.as_str()).collect();
    let mut extra = 0;
    for stored in store.record_digests(&suite_digest)? {
        if !named.contains(stored.as_str()) {
            extra += 1;
            divergences.push(Divergence {
                cell: stored,
                index: None,
                kind: DriftKind::ExtraRecord,
                detail: "present in the store but not in the suite expansion".to_string(),
            });
        }
    }

    // Manifest cross-check: same cells, same order, same verdicts.
    let expect: Vec<(usize, String, bool)> = fresh
        .outcomes
        .iter()
        .enumerate()
        .map(|(i, o)| (i, o.digest(), o.ok()))
        .collect();
    let got: Vec<(usize, String, bool)> = manifest
        .cells
        .iter()
        .map(|c| (c.index, c.digest.clone(), c.ok))
        .collect();
    if expect != got {
        divergences.push(Divergence {
            cell: suite_digest.clone(),
            index: None,
            kind: DriftKind::ManifestMismatch,
            detail: format!(
                "manifest lists {} cells, fresh run produced {} (or order/verdicts differ)",
                got.len(),
                expect.len()
            ),
        });
    }

    divergences.sort_by_key(|d| (d.index.unwrap_or(usize::MAX), d.cell.clone()));
    Ok(DriftReport {
        suite_digest,
        checked: cells.len() + extra,
        divergences,
    })
}

/// Compare two stores (e.g. runs of the same suites under two builds):
/// for every suite directory in `baseline`, every record must exist in
/// `candidate` with identical bytes, and vice versa.
pub fn compare_stores(baseline: &LabStore, candidate: &LabStore) -> Result<DriftReport, String> {
    let mut divergences = Vec::new();
    let mut checked = 0;
    let base_suites = baseline.suite_digests()?;
    for suite_digest in &base_suites {
        let base_records = baseline.record_digests(suite_digest)?;
        for cell in &base_records {
            checked += 1;
            let base_path = baseline.record_path(suite_digest, cell);
            let base_text = std::fs::read_to_string(&base_path)
                .map_err(|e| format!("{}: {e}", base_path.display()))?;
            let cand_path = candidate.record_path(suite_digest, cell);
            match std::fs::read_to_string(&cand_path) {
                Err(e) => divergences.push(Divergence {
                    cell: cell.clone(),
                    index: None,
                    kind: DriftKind::MissingRecord,
                    detail: format!("{}: {e}", cand_path.display()),
                }),
                Ok(cand_text) if cand_text == base_text => {}
                Ok(cand_text) => {
                    let detail = match (Json::parse(&base_text), Json::parse(&cand_text)) {
                        (Ok(a), Ok(b)) => json_diff(&a, &b, 4).join("; "),
                        _ => "unparseable record".to_string(),
                    };
                    divergences.push(Divergence {
                        cell: cell.clone(),
                        index: None,
                        kind: DriftKind::RecordDiffers,
                        detail,
                    });
                }
            }
        }
        // Records only the candidate has.
        if let Ok(cand_records) = candidate.record_digests(suite_digest) {
            for cell in cand_records {
                if !base_records.contains(&cell) {
                    checked += 1;
                    divergences.push(Divergence {
                        cell,
                        index: None,
                        kind: DriftKind::ExtraRecord,
                        detail: "present in candidate store only".to_string(),
                    });
                }
            }
        }
    }
    for suite_digest in candidate.suite_digests()? {
        if !base_suites.contains(&suite_digest) {
            checked += 1;
            divergences.push(Divergence {
                cell: suite_digest,
                index: None,
                kind: DriftKind::ExtraRecord,
                detail: "suite present in candidate store only".to_string(),
            });
        }
    }
    Ok(DriftReport {
        suite_digest: format!(
            "baseline store {} (candidate {})",
            baseline.root().display(),
            candidate.root().display()
        ),
        checked,
        divergences,
    })
}

/// Paths at which two JSON trees differ, depth-first, capped at `max`
/// entries (the cap keeps a wildly-divergent record's report readable).
pub fn json_diff(a: &Json, b: &Json, max: usize) -> Vec<String> {
    let mut out = Vec::new();
    diff_into(a, b, "", max, &mut out);
    out
}

fn render_short(v: &Json) -> String {
    let text = v.render();
    if text.chars().count() > 40 {
        let head: String = text.chars().take(39).collect();
        format!("{head}…")
    } else {
        text
    }
}

fn diff_into(a: &Json, b: &Json, path: &str, max: usize, out: &mut Vec<String>) {
    if out.len() >= max || a == b {
        return;
    }
    let here = |p: &str| {
        if p.is_empty() {
            "$".to_string()
        } else {
            p.to_string()
        }
    };
    match (a, b) {
        (Json::Obj(fa), Json::Obj(fb)) => {
            for (k, va) in fa {
                let sub = format!("{path}.{k}");
                match fb.iter().find(|(kb, _)| kb == k) {
                    Some((_, vb)) => diff_into(va, vb, &sub, max, out),
                    None => {
                        if out.len() < max {
                            out.push(format!("{} removed", here(&sub)));
                        }
                    }
                }
            }
            for (k, _) in fb {
                if !fa.iter().any(|(ka, _)| ka == k) && out.len() < max {
                    out.push(format!("{}.{k} added", here(path)));
                }
            }
        }
        (Json::Arr(xa), Json::Arr(xb)) => {
            if xa.len() != xb.len() && out.len() < max {
                out.push(format!(
                    "{} length {} != {}",
                    here(path),
                    xa.len(),
                    xb.len()
                ));
            }
            for (i, (va, vb)) in xa.iter().zip(xb).enumerate() {
                diff_into(va, vb, &format!("{path}[{i}]"), max, out);
            }
        }
        _ => out.push(format!(
            "{}: {} != {}",
            here(path),
            render_short(a),
            render_short(b)
        )),
    }
}
