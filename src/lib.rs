//! # apex — Asynchronous Parallel EXecution
//!
//! A full reproduction of Aumann, Bender & Zhang, *Efficient Execution of
//! Nondeterministic Parallel Programs on Asynchronous Systems* (SPAA 1996;
//! Information and Computation 139, 1997).
//!
//! The workspace is re-exported here as one facade:
//!
//! * [`sim`] — the A-PRAM host machine: asynchronous processors, stamped
//!   shared memory, oblivious adversary schedules, exact total-work
//!   accounting (substrate, paper §1);
//! * [`clock`] — the Phase Clock: O(1) updates, Θ(log n) reads, Θ(n)
//!   updates per tick (substrate, §2.1);
//! * [`core`] — **the paper's contribution**: the bin-array agreement
//!   protocol, Theorem 1 validators, stage analysis (§3–4);
//! * [`pram`] — synchronous EREW PRAM programs: model, reference executor,
//!   workload library (§2.1);
//! * [`scheme`] — the execution schemes: the paper's nondeterministic
//!   scheme, the deterministic prior-work baseline, and the scan-consensus /
//!   ideal-CAS comparators, plus the end-to-end verifier (§2);
//! * [`scenario`] — the single declarative entry point: a serializable
//!   [`Scenario`] describing any run in the workspace, with a versioned
//!   JSON round-trip and a one-call executor;
//! * [`baselines`] — ablations (linear search, stampless bins) and crafted
//!   oblivious adversaries.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured results; `cargo bench`
//! regenerates every experiment.

pub use apex_baselines as baselines;
pub use apex_clock as clock;
pub use apex_core as core;
pub use apex_pram as pram;
pub use apex_scenario as scenario;
pub use apex_scheme as scheme;
pub use apex_sim as sim;

pub use apex_scenario::{ProgramSource, Scenario, ScenarioReport};
