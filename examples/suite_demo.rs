//! Suites and the lab store, end to end (the README walkthrough):
//! load the committed smoke suite, expand it, run every cell on the
//! parallel runner, write the content-addressed records, and prove the
//! whole pipeline is drift-free by checking the store against a second
//! run.
//!
//! ```text
//! cargo run --release --example suite_demo
//! ```

use std::path::Path;

use apex_lab::{check_against_store, run_suite, LabStore, Suite};

fn main() {
    // The committed example suite: 12 cells spanning both modes, four
    // adversary families, two execution schemes, and a seed range.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("suites/smoke.json");
    let suite = Suite::load(&path).expect("committed suite parses");
    suite.validate().expect("committed suite is well-formed");

    let cells = suite.expand().expect("validated");
    println!(
        "suite {:?} ({}) expands to {} cells",
        suite.name,
        suite.digest(),
        cells.len()
    );

    // Run every cell (APEX_RUNNER_THREADS controls fan-out) and store the
    // records content-addressed under a scratch lab store.
    let store = LabStore::new(std::env::temp_dir().join("apex-suite-demo"));
    let _ = std::fs::remove_dir_all(store.root());
    let run = run_suite(&suite).expect("suite runs");
    let manifest = store.write_run(&run).expect("store writes");
    println!(
        "ran {} cells ({} ok) -> {}",
        run.outcomes.len(),
        run.ok_count(),
        store.suite_dir(&run.suite_digest).display()
    );
    for cell in manifest.cells.iter().take(3) {
        println!("  [{}] {} {}", cell.index, cell.digest, cell.summary);
    }
    println!("  …");

    // Drift check: re-run the suite and compare byte-for-byte. The whole
    // pipeline is deterministic, so this is always clean — until a code
    // change alters what some scenario computes.
    let report = check_against_store(&suite, &store).expect("stored run exists");
    println!("{}", report.summary());
    assert!(report.clean(), "the lab pipeline must be deterministic");

    // The named outputs satellite: library workloads declare their output
    // block, so records carry program *results*, not just verdicts.
    if let Some(outputs) = run.outcomes[0].record().and_then(|r| r.outputs.as_ref()) {
        println!("cell 0 named outputs (tree-reduce-max result): {outputs:?}");
    }

    let _ = std::fs::remove_dir_all(store.root());
}
