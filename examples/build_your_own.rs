//! Build your own PRAM program and run it asynchronously.
//!
//! ```text
//! cargo run --release --example build_your_own
//! ```
//!
//! Shows the `ProgramBuilder` DSL: a small Monte-Carlo estimator in which
//! every thread throws a dart at a 100×100 grid (two random coordinates),
//! tests membership in the quarter circle of radius 100 branchlessly, and a
//! tree sum counts the hits — then the program runs on the ideal
//! synchronous machine *and* on the asynchronous machine, and the verifier
//! ties them together.

use apex::pram::refexec::{execute, Choices};
use apex::pram::{Op, Operand, ProgramBuilder};
use apex::scheme::SchemeKind;
use apex::sim::ScheduleKind;
use apex::{ProgramSource, Scenario};

fn main() {
    let n = 16usize;
    let mut b = ProgramBuilder::new("monte-carlo-pi", n);
    let xs = b.alloc(n, 0);
    let ys = b.alloc(n, 0);
    let hit = b.alloc(n, 0);
    let t = b.alloc(n, 0);

    // Throw darts: two uniform draws below 100 per thread.
    let mut s = b.step();
    for i in 0..n {
        s.emit(
            i,
            xs.at(i),
            Op::RandBelow,
            Operand::Const(100),
            Operand::Const(0),
        );
    }
    let mut s = b.step();
    for i in 0..n {
        s.emit(
            i,
            ys.at(i),
            Op::RandBelow,
            Operand::Const(100),
            Operand::Const(0),
        );
    }
    // Branchless membership: hit = (x² + y² < 100²).
    let mut s = b.step();
    for i in 0..n {
        s.emit(
            i,
            xs.at(i),
            Op::Mul,
            Operand::Var(xs.at(i)),
            Operand::Var(xs.at(i)),
        );
    }
    let mut s = b.step();
    for i in 0..n {
        s.emit(
            i,
            ys.at(i),
            Op::Mul,
            Operand::Var(ys.at(i)),
            Operand::Var(ys.at(i)),
        );
    }
    let mut s = b.step();
    for i in 0..n {
        s.emit(
            i,
            t.at(i),
            Op::Add,
            Operand::Var(xs.at(i)),
            Operand::Var(ys.at(i)),
        );
    }
    let mut s = b.step();
    for i in 0..n {
        s.emit(
            i,
            hit.at(i),
            Op::Lt,
            Operand::Var(t.at(i)),
            Operand::Const(100 * 100),
        );
    }
    // Tree-sum the hits.
    let mut level: Vec<usize> = (0..n).map(|i| hit.at(i)).collect();
    while level.len() > 1 {
        let next = b.alloc(level.len() / 2, 0);
        let mut s = b.step();
        for i in 0..next.len {
            s.emit(
                i,
                next.at(i),
                Op::Add,
                Operand::Var(level[2 * i]),
                Operand::Var(level[2 * i + 1]),
            );
        }
        level = (0..next.len).map(|i| next.at(i)).collect();
    }
    let total = level[0];
    let program = b.build();
    println!(
        "built '{}': {} threads, {} steps, {} instructions",
        program.name,
        program.n_threads,
        program.n_steps(),
        program.n_instructions()
    );

    // Ideal synchronous run (one possible execution).
    let sync = execute(&program, &Choices::Seeded(7));
    println!(
        "\nideal synchronous run:   {} / {n} darts hit",
        sync.memory[total]
    );

    // Asynchronous run under a bursty adversary (its own coin flips).
    // A hand-built program rides in a Scenario as an explicit source —
    // `scenario.render_pretty()` would make this run a shareable JSON file.
    let report = Scenario::scheme(SchemeKind::Nondet, ProgramSource::Explicit(program), 7)
        .schedule(ScheduleKind::Bursty { mean_burst: 48 })
        .run()
        .into_scheme();
    let hits = report.final_memory[total];
    println!("asynchronous run:        {hits} / {n} darts hit");
    println!(
        "π estimate from async:   {:.2}",
        4.0 * hits as f64 / n as f64
    );
    println!(
        "work: {} ops, overhead {:.0}x, verifier: {}",
        report.total_work,
        report.overhead(),
        report.verify
    );
    assert!(report.verify.ok());
    println!("\nBoth runs are legal executions of the same synchronous program;");
    println!("the asynchronous one was verified against the replayed semantics.");
}
