//! The bin-array agreement protocol, watched up close.
//!
//! ```text
//! cargo run --release --example agreement_demo
//! ```
//!
//! 16 asynchronous processors agree on 16 random words per phase. The run
//! is described by an agreement-mode [`Scenario`] (the same declarative
//! form the benchmarks and the fuzzer use), assembled with
//! [`Scenario::build_agreement`] so the demo can step it one phase at a
//! time. It runs three phases, prints Theorem 1's four properties per
//! phase, and renders one bin's cells (value@stamp) so you can see the
//! copy-forward structure and the stale cells left over from earlier
//! phases.

use apex::core::{BinLayout, InstrumentOpts};
use apex::scenario::SourceSpec;
use apex::sim::ScheduleKind;
use apex::Scenario;

fn main() {
    let n = 16;
    let scenario = Scenario::agreement(n, SourceSpec::Random(90), 3, 42)
        .schedule(ScheduleKind::Sleepy {
            sleepy_frac: 0.25,
            awake: 4000,
            asleep: 20_000,
        })
        .instrument(InstrumentOpts::full());
    let mut run = scenario.build_agreement();
    println!("agreement config: {}", run.cfg.sizing_rationale());

    for _ in 0..3 {
        let o = run.run_phase();
        println!("\n=== phase {} ===", o.phase);
        println!(
            "work: {} to completion, {} to clock advance (n log n log log n = {})",
            o.work_to_completion()
                .map(|w| w.to_string())
                .unwrap_or("-".into()),
            o.phase_work(),
            (n as f64 * (n as f64).log2() * (n as f64).log2().log2()) as u64,
        );
        println!(
            "Theorem 1: unique {}/{}  accessible {}/{}  correct {}/{}  stability violations {}",
            o.report.n_unique(),
            n,
            o.report.n_accessible(),
            n,
            o.report.n_correct(),
            n,
            o.stability_violations,
        );
        if let Some(clobbers) = &o.clobbers {
            println!(
                "clobbers by tardy processors: total {}, worst bin {}",
                clobbers.iter().sum::<u64>(),
                clobbers.iter().max().unwrap()
            );
        }
        // Render bin 0: cells as value@phase (the stamp minus the +1 bias).
        let bins = run.bins;
        let cells: Vec<String> = run.machine().with_mem(|mem| {
            (0..bins.cells_per_bin())
                .map(|j| {
                    let c = mem.peek(bins.cell_addr(0, j));
                    match BinLayout::phase_of_stamp(c.stamp) {
                        Some(p) if p == o.phase => format!("[{:>2}]", c.value),
                        Some(p) => format!(" {:>2}ᵖ{}", c.value, p),
                        None => "  · ".into(),
                    }
                })
                .collect()
        });
        println!("Bin_0 (current-phase cells bracketed, ᵖ = stale phase): ");
        for chunk in cells.chunks(12) {
            println!("  {}", chunk.join(" "));
        }
        println!("agreed NewVal[0] = {:?}", o.agreed[0]);
    }
    println!("\nAll phases reached agreement under a sleepy (tardy-processor) adversary.");
}
