//! The Phase Clock under fire.
//!
//! ```text
//! cargo run --release --example phase_clock_demo
//! ```
//!
//! 64 processors do nothing but `Update-Clock`; the demo tracks how many
//! updates each clock level consumed (the paper's α₁·n … α₂·n window),
//! the counter spread kept tight by the two-choice rule, and shows a stale
//! write by a "tardy processor" being jump-repaired.
//!
//! (This demo deliberately assembles raw machines: the clock is the
//! substrate *below* the workspace's declarative `Scenario` layer, which
//! the other examples use.)

use apex::clock::{measure_advances, ClockConfig, PhaseClock};
use apex::sim::{MachineBuilder, RegionAllocator, ScheduleKind, Stamped};

fn main() {
    let n = 64;

    println!("== contract: Θ(n) updates per level, regardless of who updates ==");
    for kind in [
        ScheduleKind::Uniform,
        ScheduleKind::Zipf { s: 1.5 },
        ScheduleKind::Sleepy {
            sleepy_frac: 0.25,
            awake: 400,
            asleep: 4000,
        },
    ] {
        let stats = measure_advances(n, 8, &kind, 11);
        println!(
            "{:<12} α₁·n ≈ {:>6.0}  mean ≈ {:>6.0}  α₂·n ≈ {:>6.0} updates/level (T·n = {})",
            kind.label(),
            stats.alpha1 * n as f64,
            stats.alpha_mean * n as f64,
            stats.alpha2 * n as f64,
            ClockConfig::for_n(n).nominal_updates_per_advance(),
        );
    }

    println!("\n== two-choice concentration and jump repair ==");
    let mut alloc = RegionAllocator::new();
    let clock = PhaseClock::new(&mut alloc, n);
    let mut m = MachineBuilder::new(n, alloc.total())
        .seed(3)
        .schedule_kind(&ScheduleKind::Uniform)
        .build(move |ctx| async move {
            loop {
                clock.update(&ctx).await;
            }
        });
    m.run_ticks(400_000);
    let (min, med, max) = m.with_mem(|mem| clock.oracle_spread(mem));
    println!(
        "counters after 80k updates: min {min}, median {med}, max {max} (spread {})",
        max - min
    );

    // A tardy processor's stale write lowers one counter drastically…
    m.poke(clock.region().addr(7), Stamped::new(min / 2, 0));
    let before = m.with_mem(|mem| clock.oracle_spread(mem));
    m.run_ticks(50_000);
    let after = m.with_mem(|mem| clock.oracle_spread(mem));
    println!(
        "stale write smashed a counter: spread {} → jump-repaired to {}",
        before.2 - before.0,
        after.2 - after.0
    );
    assert!(after.2 - after.0 < before.2 - before.0);
    println!(
        "\nRead-Clock costs {} ops; Update-Clock costs {} ops (n = {n}).",
        clock.config().read_cost(),
        ClockConfig::update_cost()
    );
}
