//! Why the paper exists: deterministic schemes break on randomized
//! programs.
//!
//! ```text
//! cargo run --release --example failure_demo
//! ```
//!
//! Prior execution schemes re-execute tasks redundantly; that is harmless
//! when instructions are deterministic, but a re-executed *randomized*
//! instruction produces a different value, and under a tardy-processor
//! schedule different parts of the machine end up computing with different
//! versions of "the same" value — an execution equivalent to no synchronous
//! run at all.
//!
//! This demo runs the same randomized program through the deterministic
//! prior-work baseline and through the paper's agreement-based scheme,
//! under the *resonant sleeper* adversary (sleeps tuned to the subphase
//! length), and prints the verifier's violation counts. The two legs are
//! [`Scenario`]s differing in exactly one field — `mode.scheme` — which is
//! the differential argument in miniature.

use apex::baselines::adversary::resonant_sleepy;
use apex::scheme::SchemeKind;
use apex::{ProgramSource, Scenario};

fn main() {
    let n = 32;
    let seeds = 6;
    println!(
        "{:<16} {:>6} {:>12} {:>12} {:>10}",
        "scheme", "seed", "violations", "work", "verdict"
    );
    println!("{}", "-".repeat(62));
    let mut det_total = 0usize;
    let mut nondet_total = 0usize;
    for kind in [SchemeKind::DetBaseline, SchemeKind::Nondet] {
        for seed in 0..seeds {
            let cfg = apex::core::AgreementConfig::for_n(n, apex::scheme::tasks::eval_cost(2));
            let report = Scenario::scheme(
                kind,
                ProgramSource::library("random-walks", n, vec![1000, 16]),
                seed,
            )
            .schedule(resonant_sleepy(&cfg, 0.5))
            .run()
            .into_scheme();
            let v = report.verify.violations();
            match kind {
                SchemeKind::DetBaseline => det_total += v,
                _ => nondet_total += v,
            }
            println!(
                "{:<16} {:>6} {:>12} {:>12} {:>10}",
                kind.label(),
                seed,
                v,
                report.total_work,
                if report.verify.ok() {
                    "consistent"
                } else {
                    "BROKEN"
                }
            );
        }
    }
    println!("{}", "-".repeat(62));
    println!(
        "deterministic baseline: {det_total} violations; paper's scheme: {nondet_total} violations"
    );
    assert_eq!(
        nondet_total, 0,
        "the agreement-based scheme must stay consistent"
    );
    assert!(
        det_total > 0,
        "the resonant sleeper should break the deterministic baseline"
    );
    println!("\nThe deterministic scheme produced inconsistent executions; the");
    println!("agreement-based scheme stayed equivalent to a synchronous run.");
}
