//! Quickstart: run a randomized PRAM program on an asynchronous machine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! A 32-thread randomized program (each thread draws a random value, a tree
//! sums them) is written for an ideal synchronous EREW PRAM — and executed
//! on 32 *asynchronous* processors under a random adversary schedule, using
//! the paper's agreement-based execution scheme. The verifier then replays
//! the agreed random choices on the ideal machine and confirms the
//! asynchronous execution was equivalent to a legal synchronous one.

use apex::pram::library::coin_sum;
use apex::scheme::{SchemeKind, SchemeRun, SchemeRunConfig};
use apex::sim::ScheduleKind;

fn main() {
    let n = 32;
    let built = coin_sum(n, 100);
    println!(
        "program: {} ({} threads, {} steps, {} instructions)",
        built.program.name,
        built.program.n_threads,
        built.program.n_steps(),
        built.program.n_instructions()
    );

    let report = SchemeRun::new(
        built.program,
        SchemeRunConfig::new(SchemeKind::Nondet, 0xC0FFEE).schedule(ScheduleKind::Uniform),
    )
    .run();

    println!("\n== asynchronous execution (paper's scheme) ==");
    println!(
        "total work:        {} atomic ops (busy-waiting included)",
        report.total_work
    );
    println!("ideal sync work:   {} ops", report.ideal_work());
    println!(
        "overhead:          {:.0}x  (theory: O(log n · log log n) × constants)",
        report.overhead()
    );
    println!(
        "eval redundancy:   {:.2} evaluations per instruction",
        report.eval_redundancy()
    );
    println!(
        "copy writes:       {} (+{} tardy-safe aborts)",
        report.copy_writes, report.aborted_copies
    );
    println!("\n== verification against the ideal synchronous PRAM ==");
    println!("{}", report.verify);
    assert!(
        report.verify.ok(),
        "execution must be equivalent to a synchronous run"
    );
    println!("OK: the asynchronous run is equivalent to a legal synchronous execution.");
}
