//! Quickstart: one declarative `Scenario` from description to verdict.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! A 32-thread randomized program (each thread draws a random value, a tree
//! sums them) is written for an ideal synchronous EREW PRAM — and executed
//! on 32 *asynchronous* processors under a random adversary schedule, using
//! the paper's agreement-based execution scheme. The whole run is named by
//! a single serializable [`Scenario`]: the JSON printed below is a complete,
//! shareable description that reproduces this exact run bit-for-bit
//! (`cargo run -p apex-synth -- run scenario.json`). The verifier then
//! replays the agreed random choices on the ideal machine and confirms the
//! asynchronous execution was equivalent to a legal synchronous one.

use apex::scheme::SchemeKind;
use apex::sim::ScheduleKind;
use apex::{ProgramSource, Scenario};

fn main() {
    let scenario = Scenario::scheme(
        SchemeKind::Nondet,
        ProgramSource::library("coin-sum", 32, vec![100]),
        0xC0FFEE,
    )
    .schedule(ScheduleKind::Uniform);

    println!("== the scenario (a complete, shareable run description) ==");
    println!("{}", scenario.render_pretty());

    let report = scenario.run().into_scheme();

    println!("== asynchronous execution (paper's scheme) ==");
    println!(
        "total work:        {} atomic ops (busy-waiting included)",
        report.total_work
    );
    println!("ideal sync work:   {} ops", report.ideal_work());
    println!(
        "overhead:          {:.0}x  (theory: O(log n · log log n) × constants)",
        report.overhead()
    );
    println!(
        "eval redundancy:   {:.2} evaluations per instruction",
        report.eval_redundancy()
    );
    println!(
        "copy writes:       {} (+{} tardy-safe aborts)",
        report.copy_writes, report.aborted_copies
    );
    println!("\n== verification against the ideal synchronous PRAM ==");
    println!("{}", report.verify);
    assert!(
        report.verify.ok(),
        "execution must be equivalent to a synchronous run"
    );
    println!("OK: the asynchronous run is equivalent to a legal synchronous execution.");
}
