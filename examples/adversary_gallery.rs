//! One program, five adversaries.
//!
//! ```text
//! cargo run --release --example adversary_gallery
//! ```
//!
//! Runs the same randomized PRAM program (parallel ±1 random walks) through
//! the paper's execution scheme under every standard adversary schedule and
//! prints the measured total work, the overhead, and the verifier verdict.
//! Each run is one [`Scenario`]; the sweep varies exactly one field (the
//! schedule). The oblivious adversary may skew, burst, or put processors to
//! sleep — the scheme's work stays within the same
//! O(n log n log log n)-per-step envelope and the execution stays correct.

use apex::scheme::SchemeKind;
use apex::sim::ScheduleKind;
use apex::{ProgramSource, Scenario};

fn main() {
    let n = 32;
    println!(
        "{:<52} {:>14} {:>10} {:>6}",
        "adversary", "total work", "overhead", "ok"
    );
    println!("{}", "-".repeat(88));
    for kind in ScheduleKind::gallery() {
        let report = Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::library("random-walks", n, vec![1_000_000, 4]),
            7,
        )
        .schedule(kind.clone())
        .run()
        .into_scheme();
        println!(
            "{:<52} {:>14} {:>9.0}x {:>6}",
            report.schedule,
            report.total_work,
            report.overhead(),
            if report.verify.ok() { "yes" } else { "NO" }
        );
        assert!(report.verify.ok());
    }
    println!("\nEvery adversary produced a correct execution (verifier-checked).");
}
