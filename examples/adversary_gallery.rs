//! One program, ten adversaries — five bases, five compositions.
//!
//! ```text
//! cargo run --release --example adversary_gallery
//! ```
//!
//! Runs the same randomized PRAM program (parallel ±1 random walks) through
//! the paper's execution scheme under every standard base adversary *and*
//! every composed adversary of the algebra's gallery — crash overlays,
//! phase switches, partitions, speed warps, and a three-deep composition —
//! and prints the measured total work, the overhead, and the verifier
//! verdict. Each run is one [`Scenario`]; the sweep varies exactly one
//! field (the schedule). The paper's claim is adversary-*arbitrary*: under
//! every composition the scheme's work stays within the same
//! O(n log n log log n)-per-step envelope and the execution stays correct.
//!
//! Composed adversaries are plain JSON values too — author them by hand,
//! lint them with `apex adversary validate`, and sweep them in suite grids
//! (`suites/adversary.json` commits this gallery as a drift-checked suite).

use apex::scheme::SchemeKind;
use apex::sim::{AdversarySpec, ScheduleKind};
use apex::{ProgramSource, Scenario};

fn main() {
    let n = 32;
    println!(
        "{:<72} {:>14} {:>10} {:>6}",
        "adversary", "total work", "overhead", "ok"
    );
    println!("{}", "-".repeat(108));
    let bases = ScheduleKind::gallery().into_iter().map(AdversarySpec::Base);
    let composed = AdversarySpec::composed_gallery(n);
    for spec in bases.chain(composed) {
        let report = Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::library("random-walks", n, vec![1_000_000, 4]),
            7,
        )
        .schedule(spec.clone())
        .run()
        .into_scheme();
        let label = if spec.depth() > 1 {
            format!(
                "{} (depth {}): {}",
                spec.label(),
                spec.depth(),
                report.schedule
            )
        } else {
            report.schedule.clone()
        };
        let label = if label.chars().count() > 72 {
            let cut: String = label.chars().take(71).collect();
            format!("{cut}…")
        } else {
            label
        };
        println!(
            "{:<72} {:>14} {:>9.0}x {:>6}",
            label,
            report.total_work,
            report.overhead(),
            if report.verify.ok() { "yes" } else { "NO" }
        );
        assert!(report.verify.ok());
    }
    println!(
        "\nEvery adversary — base or composed — produced a correct execution (verifier-checked)."
    );
}
